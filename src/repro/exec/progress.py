"""Campaign progress meter: an ``on_result`` hook with rate and ETA.

Every engine entry point accepts ``on_result``, called once per completed
fault evaluation.  :class:`ProgressMeter` is the standard observer: it
counts completions and periodically logs throughput (and ETA when the
total is known).  The ``repro.experiments`` CLI attaches one when
``--progress`` is given.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Optional, TextIO


class ProgressMeter:
    """Counts results and logs ``label: n[/total] (rate/s, ETA)`` lines.

    Callable, so it plugs directly into ``on_result=``.  Rate is computed
    over the whole run; lines are emitted at most every ``interval``
    seconds to keep output readable on fast campaigns.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "progress",
        interval: float = 2.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.count = 0
        self._started: Optional[float] = None
        self._last_log: float = float("-inf")

    # -- observation ---------------------------------------------------------
    def __call__(self, result: Any = None) -> None:
        now = self.clock()
        if self._started is None:
            self._started = now
        self.count += 1
        if now - self._last_log >= self.interval:
            self._last_log = now
            self._emit(now)

    def finish(self) -> None:
        """Log the final line (always emitted, regardless of interval)."""
        if self._started is not None and self.count:
            self._emit(self.clock())

    # -- reporting ------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Completed evaluations per second since the first result."""
        if self._started is None or self.count == 0:
            return 0.0
        elapsed = max(self.clock() - self._started, 1e-9)
        return self.count / elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        if self.total is None or self.rate <= 0:
            return None
        return max(0.0, (self.total - self.count) / self.rate)

    def _emit(self, now: float) -> None:
        rate = self.rate
        if self.total is not None:
            pct = 100.0 * self.count / max(self.total, 1)
            eta = self.eta_seconds
            eta_txt = f", ETA {eta:.0f}s" if eta is not None else ""
            line = f"{self.label}: {self.count}/{self.total} ({pct:.0f}%), {rate:.1f}/s{eta_txt}"
        else:
            line = f"{self.label}: {self.count} done, {rate:.1f}/s"
        print(line, file=self.stream, flush=True)
