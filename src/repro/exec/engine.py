"""Executors: in-process serial fallback and a process-pool fan-out.

Both expose one method, :meth:`run_chunks`: evaluate ``fn(context, chunk)``
for every chunk of ``tasks`` and return the per-task results *in task
order*, regardless of completion order.  ``fn`` must be a module-level
function (picklable by reference); the context and tasks come from
:mod:`repro.exec.tasks`.

Because every task owns a private RNG substream, result values are
identical across executors and worker counts — the executor choice is
purely a wall-clock decision.

Durability rides on the optional ``policy=`` argument (a
:class:`~repro.store.policy.RunPolicy`):

* with a store, every chunk is fingerprinted
  (:func:`repro.store.fingerprint.chunk_fingerprint`); completed chunks
  replay from the store (results + telemetry snapshot) and only missing
  chunks execute, each committed atomically on completion — so a killed
  campaign resumes from its last checkpoint, bit-identical to an
  uninterrupted run;
* failing chunks are retried with exponential backoff (safe: a chunk's
  randomness is a pure function of its tasks); a chunk that exhausts its
  retries is quarantined in the store and reported via
  :class:`~repro.common.errors.ChunkQuarantinedError` — committed chunks
  stay durable, so a rerun re-attempts only the poison chunk;
* a worker crash that breaks the process pool (``BrokenProcessPool``)
  rebuilds the pool and resubmits the surviving chunks.

Without a policy the engine behaves exactly as before the store existed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.common.errors import (
    CampaignCancelledError,
    ChunkQuarantinedError,
    ConfigurationError,
)
from repro.exec.tasks import ChunkResult
from repro.store.fingerprint import chunk_fingerprint, context_kind, context_payload
from repro.store.policy import RunPolicy
from repro.telemetry import get_telemetry
from repro.telemetry.metrics import Snapshot

#: fn(context, chunk_of_tasks) -> list of per-task results, optionally
#: wrapped in a ChunkResult carrying the chunk's telemetry snapshot
ChunkFn = Callable[[Any, Sequence[Any]], List[Any]]

#: called once per completed task result (observability hook)
ResultHook = Optional[Callable[[Any], None]]


def _chunked(tasks: Sequence[Any], chunksize: int) -> List[Sequence[Any]]:
    return [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]


def _unwrap(chunk_results: Any) -> Tuple[List[Any], Optional[Snapshot]]:
    """Split a chunk evaluation into (results, telemetry snapshot)."""
    if isinstance(chunk_results, ChunkResult):
        return chunk_results.results, chunk_results.telemetry
    return chunk_results, None


def default_chunksize(n_tasks: int, workers: int) -> int:
    """~4 chunks per worker: large enough to amortise pickling the context,
    small enough to keep the pool busy when task costs are skewed."""
    return max(1, -(-n_tasks // max(1, workers * 4)))


# -- store plumbing shared by both executors ---------------------------------------


def _fingerprints(
    policy: Optional[RunPolicy], context: Any, chunks: Sequence[Sequence[Any]]
) -> Optional[List[str]]:
    """Chunk fingerprints when a store is in force, else None.

    Fingerprints depend on the chunk *partition* (the tasks in each chunk),
    so a resumed run must use the same workers/chunksize to hit — the
    trade-off documented in docs/STORAGE.md.
    """
    if policy is None or policy.store is None:
        return None
    return [chunk_fingerprint(context, chunk) for chunk in chunks]


def _load_cached(
    policy: Optional[RunPolicy], fingerprint: Optional[str]
) -> Optional[Tuple[List[Any], Optional[Snapshot]]]:
    """Replay one completed chunk from the store, when allowed and present."""
    if policy is None or fingerprint is None or not policy.read_allowed:
        return None
    record = policy.store.get(fingerprint)
    if record is None:
        return None
    return policy.store.load_chunk(record)


def chunk_meta(context: Any, chunk: Sequence[Any], sequence: int) -> dict:
    """Durable, report-facing description of one committed chunk.

    Besides the task count, the meta records the chunk's *context payload*
    (the same durable description the fingerprint hashes — workload,
    device, ECC, framework, seed) and its ``sequence`` position in the
    chunk partition, so the read side (:mod:`repro.report`) can group a
    store's chunks back into campaigns and restore record order without
    re-deriving anything from live objects.  Beam chunks additionally
    record a run-length encoding of their tasks' resources: results pair
    1:1 with tasks in chunk order, so per-resource tallies stay
    reconstructible post hoc.  None of this enters the fingerprint — old
    stores (without the extra keys) stay valid and merely report less.
    """
    meta: dict = {"tasks": len(chunk), "sequence": sequence}
    try:
        meta["context"] = context_payload(context)
    except Exception:  # fingerprinting already succeeded; stay defensive
        pass
    indices = [task.index for task in chunk if hasattr(task, "index")]
    if indices:
        meta["task_range"] = [min(indices), max(indices)]
    if chunk and hasattr(chunk[0], "resource"):
        runs: List[list] = []
        for task in chunk:
            if runs and runs[-1][0] == task.resource:
                runs[-1][1] += 1
            else:
                runs.append([task.resource, 1])
        meta["resources"] = runs
    return meta


def _commit(
    policy: Optional[RunPolicy],
    fingerprint: Optional[str],
    kind: str,
    context: Any,
    chunk: Sequence[Any],
    chunk_index: int,
    results: List[Any],
    snapshot: Optional[Snapshot],
    attempts: int,
) -> None:
    if policy is None or fingerprint is None or not policy.write_allowed:
        return
    policy.store.put_chunk(
        fingerprint,
        kind,
        results,
        snapshot,
        meta=chunk_meta(context, chunk, chunk_index),
        attempts=attempts,
    )


def _quarantine(
    policy: Optional[RunPolicy],
    fingerprint: Optional[str],
    kind: str,
    error: BaseException,
    attempts: int,
) -> None:
    if policy is None or fingerprint is None or not policy.write_allowed:
        return
    policy.store.quarantine(
        fingerprint, kind, f"{type(error).__name__}: {error}", attempts
    )


def _evaluate_with_retry(
    fn: ChunkFn,
    context: Any,
    chunk: Sequence[Any],
    policy: Optional[RunPolicy],
    fingerprint: Optional[str],
    kind: str,
    chunk_index: int,
) -> Tuple[List[Any], Optional[Snapshot], int]:
    """Run one chunk in-process, retrying per the policy.

    Returns (results, snapshot, attempts).  After the retry budget is
    spent the chunk is quarantined (store runs raise
    :class:`ChunkQuarantinedError`; storeless runs re-raise the original
    exception, preserving the historical contract).
    """
    max_attempts = 1 + (policy.retries if policy is not None else 0)
    telemetry = get_telemetry()
    for attempt in range(1, max_attempts + 1):
        try:
            results, snapshot = _unwrap(fn(context, chunk))
            return results, snapshot, attempt
        except Exception as exc:
            # deterministic failures (e.g. a sandboxed crash under
            # on_crash="quarantine") mark themselves non-retryable: the
            # chunk would fail identically every time, so skip the budget
            if attempt >= max_attempts or getattr(exc, "non_retryable", False):
                _quarantine(policy, fingerprint, kind, exc, attempt)
                if policy is not None and policy.store is not None:
                    raise ChunkQuarantinedError(
                        [(chunk_index, fingerprint, f"{type(exc).__name__}: {exc}")]
                    ) from exc
                raise
            telemetry.count("exec.chunk_retries")
            if policy is not None and policy.backoff:
                time.sleep(policy.backoff * (2 ** (attempt - 1)))
    raise AssertionError("unreachable")  # pragma: no cover


def _worker_telemetry_reset() -> None:
    """Pool-worker initializer: install a fresh sinkless telemetry context.

    Fork-started pool workers inherit the parent's active context — under a
    ``telemetry_session`` that includes the parent's *live trace-file sink*,
    so anything a worker emitted outside a ``capture()`` scope would
    interleave into the parent's trace (and double once more via the
    shipped chunk snapshots).  A fresh sinkless context keeps worker-side
    telemetry exactly where the aggregation story expects it: in captured
    snapshots, merged by the parent in chunk order.
    """
    from repro.telemetry.core import Telemetry, set_telemetry

    set_telemetry(Telemetry())


class Executor(Protocol):
    """Minimal executor interface the reliability engines program against."""

    workers: int

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
        policy: Optional[RunPolicy] = None,
    ) -> List[Any]:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Deterministic in-process executor (``workers=1`` and tests)."""

    workers = 1

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
        policy: Optional[RunPolicy] = None,
    ) -> List[Any]:
        telemetry = get_telemetry()
        chunks = _chunked(tasks, default_chunksize(len(tasks), self.workers))
        fingerprints = _fingerprints(policy, context, chunks)
        kind = context_kind(context) if fingerprints is not None else ""
        results: List[Any] = []
        for index, chunk in enumerate(chunks):
            fingerprint = fingerprints[index] if fingerprints is not None else None
            cached = _load_cached(policy, fingerprint)
            if cached is not None:
                chunk_results, snapshot = cached
            else:
                chunk_results, snapshot, attempts = _evaluate_with_retry(
                    fn, context, chunk, policy, fingerprint, kind, index
                )
                _commit(
                    policy, fingerprint, kind, context, chunk, index,
                    chunk_results, snapshot, attempts,
                )
            telemetry.registry.merge(snapshot)
            for result in chunk_results:
                results.append(result)
                telemetry.task_done()
                if on_result is not None:
                    on_result(result)
        return results

    def close(self) -> None:  # nothing to release
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ProcessExecutor:
    """Fan tasks out over a ``ProcessPoolExecutor``.

    The pool is created lazily on first use and reused across calls, so a
    session-scale sequence of campaigns pays the worker start-up cost once.
    Close explicitly or use as a context manager; an unclosed pool is torn
    down by the interpreter at exit.  A pool broken by a worker crash is
    rebuilt transparently and the in-flight chunks resubmitted (counted
    against their retry budget, since the chunk that killed the worker is
    indistinguishable from its innocent neighbours).

    Workloads are pickled per chunk: anything importable (registry
    workloads, module-level custom workloads) always works; classes defined
    in a ``__main__`` script additionally require the ``fork`` start method
    (the Linux default).
    """

    def __init__(self, workers: int, chunksize: Optional[int] = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # the initializer rides through _rebuild_pool too: a pool
            # rebuilt after a worker crash re-registers the same worker
            # telemetry isolation as the original
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_telemetry_reset
            )
        return self._pool

    def _rebuild_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        return self._ensure_pool()

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
        policy: Optional[RunPolicy] = None,
    ) -> List[Any]:
        if not tasks:
            return []
        telemetry = get_telemetry()
        chunksize = self.chunksize or default_chunksize(len(tasks), self.workers)
        chunks = _chunked(tasks, chunksize)
        fingerprints = _fingerprints(policy, context, chunks)
        kind = context_kind(context) if fingerprints is not None else ""
        by_chunk: List[Optional[List[Any]]] = [None] * len(chunks)
        snapshots: List[Optional[Snapshot]] = [None] * len(chunks)

        def deliver(chunk_results: List[Any]) -> None:
            for result in chunk_results:
                telemetry.task_done()
                if on_result is not None:
                    on_result(result)

        to_submit: List[int] = []
        for index in range(len(chunks)):
            fingerprint = fingerprints[index] if fingerprints is not None else None
            cached = _load_cached(policy, fingerprint)
            if cached is not None:
                by_chunk[index], snapshots[index] = cached
                deliver(by_chunk[index])
            else:
                to_submit.append(index)

        max_attempts = 1 + (policy.retries if policy is not None else 0)
        attempts: Dict[int, int] = {index: 0 for index in to_submit}
        quarantined: List[Tuple[int, Optional[str], str]] = []
        if to_submit:
            pool = self._ensure_pool()
            pending = {pool.submit(fn, context, chunks[i]): i for i in to_submit}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                retry_indices: List[int] = []
                pool_broken = False
                for future in done:
                    index = pending.pop(future)
                    try:
                        chunk_results, snapshots[index] = _unwrap(future.result())
                    except Exception as exc:
                        attempts[index] += 1
                        pool_broken = pool_broken or isinstance(exc, BrokenProcessPool)
                        if attempts[index] >= max_attempts or getattr(
                            exc, "non_retryable", False
                        ):
                            fingerprint = (
                                fingerprints[index] if fingerprints is not None else None
                            )
                            _quarantine(policy, fingerprint, kind, exc, attempts[index])
                            if policy is None or policy.store is None:
                                # storeless runs keep the historical contract:
                                # the worker exception propagates directly
                                for other in pending:
                                    other.cancel()
                                raise
                            quarantined.append(
                                (index, fingerprint, f"{type(exc).__name__}: {exc}")
                            )
                        else:
                            telemetry.count("exec.chunk_retries")
                            retry_indices.append(index)
                    else:
                        by_chunk[index] = chunk_results
                        _commit(
                            policy,
                            fingerprints[index] if fingerprints is not None else None,
                            kind,
                            context,
                            chunks[index],
                            index,
                            chunk_results,
                            snapshots[index],
                            attempts.get(index, 0) + 1,
                        )
                        deliver(chunk_results)
                if pool_broken:
                    # the surviving futures of the broken pool will drain
                    # through the next wait() iterations; new submissions
                    # must go to a fresh pool
                    pool = self._rebuild_pool()
                for index in sorted(retry_indices):
                    if policy is not None and policy.backoff:
                        time.sleep(policy.backoff * (2 ** (attempts[index] - 1)))
                    pending[pool.submit(fn, context, chunks[index])] = index
        # merge worker metrics in chunk order (not completion order), so the
        # aggregate is a pure function of the task list — scheduling-free
        for snapshot in snapshots:
            telemetry.registry.merge(snapshot)
        if quarantined:
            # completed chunks are already committed to the store; report the
            # poison ones instead of returning a silently incomplete merge
            raise ChunkQuarantinedError(quarantined)
        results: List[Any] = []
        for chunk_results in by_chunk:
            results.extend(chunk_results or ())
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={self.workers})"


class LeaseExecutor:
    """Crash-tolerant executor: N workers coordinate through the store.

    Where :class:`ProcessExecutor` pushes chunks to a pool over pipes,
    ``LeaseExecutor`` publishes nothing — workers *pull*: each claims
    chunks from the shared store via the lease table
    (:mod:`repro.service.lease`), evaluates them with the normal
    retry/quarantine machinery, and commits idempotently.  Any worker —
    including one started tomorrow on another host pointing at the same
    store — can finish a campaign another worker died in the middle of,
    which is the property the direct executors cannot offer.

    * ``workers=1`` drains in the calling process (no fork; the bench's
      measure of pure lease overhead).
    * ``workers>1`` forks that many child processes, each draining with
      its own store handle, while the parent supervises: it delivers
      results in sequence order as chunks become terminal, counts worker
      deaths (``service.workers.died``), and — if every child dies with
      work remaining — drains the remainder itself, so a campaign always
      completes as long as *some* process survives.

    The chunk partition is always the **serial** partition
    (:func:`default_chunksize` with ``workers=1``) regardless of the
    worker count: fingerprints, committed chunks, and the extracted
    report are then bit-identical to a ``SerialExecutor`` run — the
    service's headline invariant — and any worker fleet resumes any
    other fleet's store.

    ``policy.refresh=True`` (the registry's ``clean`` mode) is honoured
    with a *staleness watermark*: records committed before the run
    started are treated as absent (everything re-executes), while commits
    landing during the run still coordinate normally.

    Requires a policy with a store — the store *is* the coordination
    medium.  Cooperative cancellation (``campaign=`` + a tombstone in the
    store) raises :class:`~repro.common.errors.CampaignCancelledError`
    after in-flight chunks drain.
    """

    def __init__(
        self,
        workers: int = 1,
        service: Optional["ServicePolicy"] = None,
        campaign: Optional[str] = None,
        chaos_kill_after: Optional[int] = None,
        chaos_worker: int = 0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chaos_kill_after is not None and workers < 2:
            raise ConfigurationError(
                "chaos_kill_after SIGKILLs a worker process; it needs "
                "workers >= 2 so the kill hits a child, not the caller"
            )
        self.workers = workers
        self.service = service
        self.campaign = campaign
        self.chaos_kill_after = chaos_kill_after
        self.chaos_worker = chaos_worker

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
        policy: Optional[RunPolicy] = None,
    ) -> List[Any]:
        from repro.service.registry import CampaignRegistry
        from repro.service.worker import ServiceWorker
        from repro.store.backends import DONE, QUARANTINED
        from repro.store.policy import service_setting

        if not tasks:
            return []
        if policy is None or policy.store is None:
            raise ConfigurationError(
                "LeaseExecutor requires a policy with a store: the store is "
                "the coordination medium workers claim chunks through"
            )
        telemetry = get_telemetry()
        store = policy.store
        service = self.service if self.service is not None else service_setting(policy)
        # always the serial partition — see class docstring
        chunks = _chunked(tasks, default_chunksize(len(tasks), 1))
        fingerprints = _fingerprints(policy, context, chunks)
        assert fingerprints is not None
        stale_before = time.time() if policy.refresh else None

        by_chunk: List[Optional[List[Any]]] = [None] * len(chunks)
        snapshots: List[Optional[Snapshot]] = [None] * len(chunks)
        #: chunks an *in-process* worker evaluated this run: results handed
        #: over directly, sparing deliver_ready a store read-back + decode
        #: (and matching SerialExecutor, which also delivers from memory)
        evaluated: Dict[int, Tuple[List[Any], Optional[Snapshot]]] = {}
        #: terminal status per chunk as observed during delivery — saves
        #: the epilogue a full record read per settled chunk
        statuses: List[Optional[str]] = [None] * len(chunks)
        delivered = 0

        def fresh(fingerprint: str):
            """The chunk's terminal record, ignoring stale (clean-mode) ones."""
            record = store.backend.get(fingerprint)
            if record is None:
                return None
            if stale_before is not None and record.created < stale_before:
                return None
            return record

        def deliver_ready() -> None:
            """Advance the sequence pointer over terminal chunks, merging
            snapshots and delivering results in chunk order (the same
            order a serial run produces them in)."""
            nonlocal delivered
            while delivered < len(chunks):
                cached = evaluated.pop(delivered, None)
                if cached is not None:
                    chunk_results, snapshot = cached
                else:
                    record = fresh(fingerprints[delivered])
                    if record is None:
                        return
                    if record.status == QUARANTINED:
                        statuses[delivered] = QUARANTINED
                        delivered += 1
                        continue
                    loaded = store.get(fingerprints[delivered])
                    if loaded is None:
                        return
                    chunk_results, snapshot = store.load_chunk(loaded)
                statuses[delivered] = DONE
                by_chunk[delivered] = chunk_results
                snapshots[delivered] = snapshot
                telemetry.registry.merge(snapshot)
                for result in chunk_results:
                    telemetry.task_done()
                    if on_result is not None:
                        on_result(result)
                delivered += 1

        def on_worker_chunk(
            index: int,
            chunk_results: List[Any],
            snapshot: Optional[Snapshot],
        ) -> None:
            evaluated[index] = (chunk_results, snapshot)
            deliver_ready()

        cancelled = False
        if self.workers == 1:
            worker = ServiceWorker(
                store,
                policy,
                service,
                campaign=self.campaign,
                stale_before=stale_before,
                on_chunk=on_worker_chunk,
            )
            cancelled = worker.drain(fn, context, chunks, fingerprints).cancelled
        else:
            cancelled = self._supervise(
                fn, context, chunks, fingerprints, policy, service,
                stale_before, deliver_ready, on_worker_chunk,
            )

        store.refresh()
        deliver_ready()
        registry = CampaignRegistry(store)
        quarantined: List[Tuple[int, Optional[str], str]] = []
        committed = 0
        for index, fingerprint in enumerate(fingerprints):
            status = statuses[index]
            if status is None:
                record = fresh(fingerprint)
                if record is None:
                    continue
                status = record.status
            if status == QUARANTINED:
                record = fresh(fingerprint)  # only for the error message
                quarantined.append(
                    (index, fingerprint,
                     (record.error if record is not None else None) or "quarantined")
                )
            else:
                committed += 1
        if cancelled:
            stone = registry.tombstone(self.campaign) if self.campaign else None
            raise CampaignCancelledError(
                self.campaign or "<anonymous>",
                committed=committed,
                total=len(chunks),
                reason=stone.reason if stone is not None else "",
            )
        if quarantined:
            raise ChunkQuarantinedError(quarantined)
        results: List[Any] = []
        for chunk_results in by_chunk:
            results.extend(chunk_results or ())
        return results

    def _supervise(
        self,
        fn: ChunkFn,
        context: Any,
        chunks: Sequence[Sequence[Any]],
        fingerprints: Sequence[str],
        policy: RunPolicy,
        service: "ServicePolicy",
        stale_before: Optional[float],
        deliver_ready,
        on_worker_chunk,
    ) -> bool:
        """Fork N drain children and watch them; returns the cancelled flag.

        The parent is the supervisor: it reaps dead children (a non-zero /
        signalled exit counts ``service.workers.died``), and if the whole
        fleet dies with chunks outstanding it becomes the worker of last
        resort and drains the remainder in-process.
        """
        import multiprocessing

        from repro.service.liveness import default_worker_id
        from repro.service.registry import CampaignRegistry
        from repro.service.worker import ServiceWorker, service_child_main
        from repro.store.backends import DONE, JsonlBackend, QUARANTINED

        telemetry = get_telemetry()
        store = policy.store
        backend_name = "jsonl" if isinstance(store.backend, JsonlBackend) else "sqlite"
        policy_spec = {
            "retries": policy.retries,
            "backoff": policy.backoff,
            "on_crash": policy.on_crash,
        }
        base_id = default_worker_id()
        procs = []
        for index in range(self.workers):
            chaos = (
                self.chaos_kill_after if index == self.chaos_worker else None
            )
            procs.append(
                multiprocessing.Process(
                    target=service_child_main,
                    args=(
                        str(store.path),
                        backend_name,
                        policy_spec,
                        service,
                        fn,
                        context,
                        list(chunks),
                        list(fingerprints),
                        f"{base_id}.w{index}",
                        self.campaign,
                        chaos,
                        stale_before,
                    ),
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        registry = CampaignRegistry(store)
        reaped = set()
        cancelled = False

        def fresh_terminal(fingerprint: str) -> bool:
            record = store.backend.get(fingerprint)
            if record is None:
                return False
            if stale_before is not None and record.created < stale_before:
                return False
            return record.status in (DONE, QUARANTINED)

        try:
            while True:
                store.refresh()
                deliver_ready()
                if all(fresh_terminal(fp) for fp in fingerprints):
                    break
                if self.campaign and registry.cancelled(self.campaign):
                    cancelled = True
                for index, proc in enumerate(procs):
                    if index in reaped or proc.is_alive():
                        continue
                    proc.join()
                    reaped.add(index)
                    if proc.exitcode != 0:
                        telemetry.count("service.workers.died")
                if len(reaped) == len(procs):
                    if cancelled:
                        break
                    # the whole fleet is gone with work remaining: the
                    # supervisor drains the rest itself — crash recovery's
                    # last line
                    telemetry.count("service.supervisor.takeovers")
                    worker = ServiceWorker(
                        store,
                        policy,
                        service,
                        worker_id=f"{base_id}.supervisor",
                        campaign=self.campaign,
                        stale_before=stale_before,
                        on_chunk=on_worker_chunk,
                    )
                    cancelled = worker.drain(
                        fn, context, chunks, fingerprints
                    ).cancelled
                    continue
                time.sleep(service.poll_interval)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.join()
        return cancelled

    def close(self) -> None:  # workers are per-run, nothing persists
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeaseExecutor(workers={self.workers}, campaign={self.campaign!r})"
        )


def get_executor(
    workers: Optional[int] = None, executor: Optional[Executor] = None
) -> Executor:
    """Resolve the ``workers=`` / ``executor=`` pair every engine accepts.

    An explicit executor wins (lets callers share one pool across engines);
    otherwise ``workers=1`` (or None) is serial and ``workers>1`` builds a
    fresh process pool.  ``workers=0`` auto-sizes to the machine.
    """
    if executor is not None:
        return executor
    if workers is None or workers == 1:
        return SerialExecutor()
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError("workers must be >= 0")
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
