"""Executors: in-process serial fallback and a process-pool fan-out.

Both expose one method, :meth:`run_chunks`: evaluate ``fn(context, chunk)``
for every chunk of ``tasks`` and return the per-task results *in task
order*, regardless of completion order.  ``fn`` must be a module-level
function (picklable by reference); the context and tasks come from
:mod:`repro.exec.tasks`.

Because every task owns a private RNG substream, result values are
identical across executors and worker counts — the executor choice is
purely a wall-clock decision.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Protocol, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.exec.tasks import ChunkResult
from repro.telemetry import get_telemetry
from repro.telemetry.metrics import Snapshot

#: fn(context, chunk_of_tasks) -> list of per-task results, optionally
#: wrapped in a ChunkResult carrying the chunk's telemetry snapshot
ChunkFn = Callable[[Any, Sequence[Any]], List[Any]]

#: called once per completed task result (observability hook)
ResultHook = Optional[Callable[[Any], None]]


def _chunked(tasks: Sequence[Any], chunksize: int) -> List[Sequence[Any]]:
    return [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]


def _unwrap(chunk_results: Any) -> Tuple[List[Any], Optional[Snapshot]]:
    """Split a chunk evaluation into (results, telemetry snapshot)."""
    if isinstance(chunk_results, ChunkResult):
        return chunk_results.results, chunk_results.telemetry
    return chunk_results, None


def default_chunksize(n_tasks: int, workers: int) -> int:
    """~4 chunks per worker: large enough to amortise pickling the context,
    small enough to keep the pool busy when task costs are skewed."""
    return max(1, -(-n_tasks // max(1, workers * 4)))


class Executor(Protocol):
    """Minimal executor interface the reliability engines program against."""

    workers: int

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
    ) -> List[Any]:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Deterministic in-process executor (``workers=1`` and tests)."""

    workers = 1

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
    ) -> List[Any]:
        telemetry = get_telemetry()
        results: List[Any] = []
        for chunk in _chunked(tasks, default_chunksize(len(tasks), self.workers)):
            chunk_results, snapshot = _unwrap(fn(context, chunk))
            telemetry.registry.merge(snapshot)
            for result in chunk_results:
                results.append(result)
                telemetry.task_done()
                if on_result is not None:
                    on_result(result)
        return results

    def close(self) -> None:  # nothing to release
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ProcessExecutor:
    """Fan tasks out over a ``ProcessPoolExecutor``.

    The pool is created lazily on first use and reused across calls, so a
    session-scale sequence of campaigns pays the worker start-up cost once.
    Close explicitly or use as a context manager; an unclosed pool is torn
    down by the interpreter at exit.

    Workloads are pickled per chunk: anything importable (registry
    workloads, module-level custom workloads) always works; classes defined
    in a ``__main__`` script additionally require the ``fork`` start method
    (the Linux default).
    """

    def __init__(self, workers: int, chunksize: Optional[int] = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def run_chunks(
        self,
        fn: ChunkFn,
        context: Any,
        tasks: Sequence[Any],
        on_result: ResultHook = None,
    ) -> List[Any]:
        if not tasks:
            return []
        telemetry = get_telemetry()
        chunksize = self.chunksize or default_chunksize(len(tasks), self.workers)
        chunks = _chunked(tasks, chunksize)
        pool = self._ensure_pool()
        pending = {pool.submit(fn, context, chunk): i for i, chunk in enumerate(chunks)}
        by_chunk: List[Optional[List[Any]]] = [None] * len(chunks)
        snapshots: List[Optional[Snapshot]] = [None] * len(chunks)
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                # re-raises worker exceptions
                chunk_results, snapshots[index] = _unwrap(future.result())
                by_chunk[index] = chunk_results
                for result in chunk_results:
                    telemetry.task_done()
                    if on_result is not None:
                        on_result(result)
        # merge worker metrics in chunk order (not completion order), so the
        # aggregate is a pure function of the task list — scheduling-free
        for snapshot in snapshots:
            telemetry.registry.merge(snapshot)
        results: List[Any] = []
        for chunk_results in by_chunk:
            results.extend(chunk_results or ())
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={self.workers})"


def get_executor(
    workers: Optional[int] = None, executor: Optional[Executor] = None
) -> Executor:
    """Resolve the ``workers=`` / ``executor=`` pair every engine accepts.

    An explicit executor wins (lets callers share one pool across engines);
    otherwise ``workers=1`` (or None) is serial and ``workers>1`` builds a
    fresh process pool.  ``workers=0`` auto-sizes to the machine.
    """
    if executor is not None:
        return executor
    if workers is None or workers == 1:
        return SerialExecutor()
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError("workers must be >= 0")
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
