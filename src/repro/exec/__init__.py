"""Parallel campaign execution engine.

Fault-injection campaigns, beam fault evaluations and memory-AVF strike
sweeps are embarrassingly parallel: every evaluation re-executes the
workload with one armed fault and classifies the outcome independently.
This package fans those evaluations out over worker processes:

* :mod:`repro.exec.tasks` — picklable task descriptions.  A task names the
  fault site (group + target index, beam resource, or storage strike) and
  carries the *name path* of its private RNG substream, so the drawn random
  numbers depend only on the root seed and the task identity — never on
  worker count, chunking, or scheduling order.  Serial and parallel runs
  are therefore bit-identical (asserted by ``tests/exec``).
* :mod:`repro.exec.engine` — the executors.  :class:`SerialExecutor` runs
  chunks in-process (the default, and what tests use);
  :class:`ProcessExecutor` dispatches chunks over a
  ``concurrent.futures.ProcessPoolExecutor``.
* :mod:`repro.exec.worker` — worker-side chunk evaluators with a
  per-process cache, so each worker computes the golden
  :class:`~repro.sim.launch.KernelRun` once per workload instead of once
  per task.  Evaluators capture their tasks' telemetry into a local
  :class:`~repro.telemetry.metrics.Registry` and ship it back inside a
  :class:`~repro.exec.tasks.ChunkResult`; the executors merge snapshots in
  chunk order, so ``workers=N`` aggregates exactly match a serial run.
* :mod:`repro.exec.progress` — an ``on_result`` rate/ETA meter for long
  campaigns (used by the ``repro.experiments`` CLI), also consumable as a
  telemetry :class:`~repro.telemetry.events.EventSink`.

Durability is layered on through ``run_chunks(..., policy=RunPolicy)``:
completed chunks checkpoint to a :mod:`repro.store` backend and replay on
resume, failing chunks retry with backoff and quarantine — see
``docs/STORAGE.md``.
"""

from repro.exec.engine import Executor, ProcessExecutor, SerialExecutor, get_executor
from repro.exec.progress import ProgressMeter
from repro.exec.tasks import (
    BeamEvalContext,
    BeamEvalTask,
    CampaignContext,
    ChunkResult,
    InjectionTask,
    MemoryAvfContext,
    StrikeTask,
    WorkloadHandle,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "get_executor",
    "ProgressMeter",
    "ChunkResult",
    "WorkloadHandle",
    "CampaignContext",
    "InjectionTask",
    "BeamEvalContext",
    "BeamEvalTask",
    "MemoryAvfContext",
    "StrikeTask",
]
