"""Bench: regenerate Figure 5 (beam FITs of all codes, ECC OFF/ON)."""

from repro.experiments.fig5 import FIG5_CODES, ecc_sdc_reduction, run_fig5


def test_bench_fig5(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_fig5(session=session), rounds=1, iterations=1
    )
    expected = sum(len(codes) for codes in FIG5_CODES.values())
    assert len(rows) == expected
    assert all(r["SDC"] >= 0 and r["DUE"] >= 0 for r in rows)
    # ECC must cut the Kepler SDC rates on average
    assert ecc_sdc_reduction(rows, "kepler") > 1.5
    benchmark.extra_info["beam_runs"] = expected
    benchmark.extra_info["ecc_sdc_reduction_kepler"] = round(ecc_sdc_reduction(rows, "kepler"), 2)
