"""Bench: regenerate the §VII-B DUE-underestimation table."""

import math

from repro.experiments.due import run_due


def test_bench_due(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_due(session=session), rounds=1, iterations=1
    )
    assert len(rows) == 4  # (K40c, V100) × (ECC OFF, ECC ON)
    for row in rows:
        factor = row["beam/pred DUE factor"]
        # the paper's central DUE finding: always a large underestimation
        assert math.isinf(factor) or factor > 10.0
    benchmark.extra_info["factors"] = {
        f'{r["device"]}/{r["ECC"]}': r["beam/pred DUE factor"] for r in rows
    }
