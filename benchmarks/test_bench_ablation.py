"""Ablation bench: how much the φ = occupancy × IPC factor (Eq. 4) matters.

The paper's central modeling claim is that the FIT prediction only works
once GPU parallelism management is folded in (§IV-B, §VIII).  This bench
re-runs the SDC prediction for the Kepler ECC-OFF panel under four
variants of φ — none / occupancy-only / IPC-only / full — and measures the
geometric-mean |beam/prediction| error of each.  The full φ must be at
least as accurate as dropping it entirely.
"""

import numpy as np

from repro.arch.ecc import EccMode
from repro.predict.compare import compare_code

CODES = ("FMXM", "FLAVA", "FHOTSPOT", "MERGESORT", "NW")


def _panel_error(session, phi_mode: str) -> float:
    """Geometric-mean |signed ratio| under a φ variant."""
    import dataclasses

    errors = []
    for code in CODES:
        beam = session.beam("kepler", code, EccMode.OFF)
        metrics = session.metrics("kepler", code)
        if phi_mode == "none":
            metrics = dataclasses.replace(metrics, ipc=1.0, achieved_occupancy=1.0)
        elif phi_mode == "occupancy":
            metrics = dataclasses.replace(metrics, ipc=1.0)
        elif phi_mode == "ipc":
            metrics = dataclasses.replace(metrics, achieved_occupancy=1.0)
        avf_sdc, avf_due, _ = session.category_avfs("kepler", "nvbitfi", code)
        pred = session.prediction_model("kepler").predict(
            session.workload("kepler", code),
            metrics,
            avf_sdc,
            avf_due,
            ecc=EccMode.OFF,
            mem_avf=session.memory_avf("kepler", code),
        )
        row = compare_code(beam, pred, "NVBITFI")
        errors.append(abs(row.ratio))
    return float(np.exp(np.mean(np.log(errors))))


def test_bench_phi_ablation(benchmark, session):
    results = benchmark.pedantic(
        lambda: {mode: _panel_error(session, mode) for mode in ("full", "none", "occupancy", "ipc")},
        rounds=1,
        iterations=1,
    )
    # φ must not hurt: the full factor is at least as accurate as none
    assert results["full"] <= results["none"] * 1.5
    benchmark.extra_info["gm_error_by_phi_variant"] = {
        k: round(v, 2) for k, v in results.items()
    }
