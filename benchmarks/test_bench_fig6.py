"""Bench: regenerate Figure 6 (beam vs fault-simulation SDC ratios)."""

from repro.experiments.fig6 import FIG6_CODES, run_fig6


def test_bench_fig6(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_fig6(session=session), rounds=1, iterations=1
    )
    averages = [r for r in rows if r["code"] == "Average"]
    # one Average bar per (panel, framework): kepler 2 fw × 2 ecc + volta 1 fw × 2 ecc
    assert len(averages) == 6
    code_rows = [r for r in rows if r["code"] != "Average"]
    assert len(code_rows) == sum(
        len(codes) * (2 if arch == "kepler" else 1)
        for (arch, _), codes in FIG6_CODES.items()
    )
    benchmark.extra_info["panel_averages"] = {
        f'{r["arch"]}/{r["ECC"]}/{r["framework"]}': round(r["ratio"], 2) for r in averages
    }
