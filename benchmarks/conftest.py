"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one paper artifact end to end at
a reduced campaign scale (`BENCH_CONFIG`), asserts its structural sanity,
and reports wall-clock through pytest-benchmark.  Run with:

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.session import ExperimentSession


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so a
    whole-tree run can deselect it with ``-m "not bench"`` (the tier-1
    suite already excludes this directory via ``testpaths``)."""
    for item in items:
        item.add_marker(pytest.mark.bench)

#: one shared reduced-scale configuration for all benches
BENCH_CONFIG = ExperimentConfig(
    seed=0, injections=60, beam_fault_evals=60, memory_avf_strikes=12
)


@pytest.fixture(scope="session")
def session():
    """One memoized session shared by every bench, so each artifact's
    incremental cost (not re-derivation of shared inputs) is measured."""
    return ExperimentSession(BENCH_CONFIG)


@pytest.fixture(scope="session")
def warm_session(session):
    """Session with campaigns/beams pre-computed by whichever bench ran
    first; used by benches that time only the aggregation layer."""
    return session
