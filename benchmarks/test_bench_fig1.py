"""Bench: regenerate Figure 1 (instruction mix per code)."""

from repro.experiments.fig1 import run_fig1


def test_bench_fig1(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_fig1(session=session), rounds=1, iterations=1
    )
    for arch_rows in rows.values():
        for row in arch_rows:
            total = sum(v for k, v in row.items() if k != "code")
            assert abs(total - 100.0) < 1.5
    benchmark.extra_info["rows"] = sum(len(r) for r in rows.values())
