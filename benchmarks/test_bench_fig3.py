"""Bench: regenerate Figure 3 (micro-benchmark beam FITs, both GPUs)."""

from repro.experiments.fig3 import run_fig3


def test_bench_fig3(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_fig3(session=session), rounds=1, iterations=1
    )
    kepler = {r["ubench"]: r for r in rows["kepler"]}
    volta = {r["ubench"]: r for r in rows["volta"]}
    # the normalization anchors are exactly 1.0 by construction
    assert abs(kepler["FADD"]["DUE"] - 1.0) < 1e-9
    assert abs(volta["HFMA"]["DUE"] - 1.0) < 1e-9
    # headline shapes: INT > FP32 on Kepler; MMA dominates Volta scalars
    assert kepler["IADD"]["SDC"] > kepler["FADD"]["SDC"]
    assert volta["HMMA"]["SDC"] > 5 * volta["DFMA"]["SDC"]
    benchmark.extra_info["ubenches"] = len(kepler) + len(volta)
