"""Bench: telemetry instrumentation overhead (repro.telemetry).

Times the same campaign with telemetry off (the default sinkless context)
and on (a full trace-writing session), asserting the always-on counters
plus an active JSONL sink cost less than 10% of the uninstrumented
wall-clock — the ISSUE 2 overhead budget.
"""

import time

from repro.arch.devices import KEPLER_K40C
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi
from repro.telemetry import telemetry_session
from repro.workloads.registry import get_workload

INJECTIONS = 60
ROUNDS = 3
MAX_OVERHEAD = 0.10


def _run_campaign():
    runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=0)
    workload = get_workload("kepler", "FMXM", seed=0)
    return runner.run(workload, INJECTIONS)


def _best_of(fn, rounds=ROUNDS):
    """Min-of-N wall-clock: robust to scheduler noise on loaded machines."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_telemetry_overhead(benchmark, tmp_path):
    _run_campaign()  # warm imports and process-local caches outside timing

    def instrumented():
        with telemetry_session(trace_path=tmp_path / "bench.jsonl") as telemetry:
            _run_campaign()
            return dict(telemetry.registry.counters)

    baseline_seconds = _best_of(_run_campaign)
    counters = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    telemetry_seconds = min(benchmark.stats["mean"], _best_of(instrumented, rounds=ROUNDS - 1))

    # the instrumented run really did record the campaign
    assert counters["campaign.injections"] == INJECTIONS
    assert counters["exec.tasks"] == INJECTIONS

    overhead = telemetry_seconds / baseline_seconds - 1.0
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 3)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    assert overhead < MAX_OVERHEAD, (
        f"telemetry added {overhead:.1%} over the uninstrumented campaign "
        f"(budget: {MAX_OVERHEAD:.0%})"
    )
