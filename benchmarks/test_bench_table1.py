"""Bench: regenerate Table I (profiling of every code on both GPUs)."""

from repro.experiments.table1 import TABLE1_CODES, run_table1


def test_bench_table1(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_table1(session=session), rounds=1, iterations=1
    )
    assert len(rows["kepler"]) == len(TABLE1_CODES["kepler"])
    assert len(rows["volta"]) == len(TABLE1_CODES["volta"])
    benchmark.extra_info["codes_profiled"] = sum(len(r) for r in rows.values())
