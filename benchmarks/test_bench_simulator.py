"""Micro-benchmarks of the simulator substrate itself.

These measure the cost of the primitives everything else multiplies:
one golden kernel execution, one fault-injection run, one beam outcome
evaluation.  Regressions here multiply into every campaign.
"""

import numpy as np

from repro.arch.devices import KEPLER_K40C
from repro.arch.isa import OpClass
from repro.faultsim.frameworks import NvBitFi
from repro.faultsim.campaign import CampaignRunner
from repro.sim.launch import run_kernel
from repro.workloads.registry import get_workload


def test_bench_golden_mxm(benchmark):
    w = get_workload("kepler", "FMXM", seed=0)
    w.prepare()
    run = benchmark(lambda: run_kernel(KEPLER_K40C, w.kernel, w.sim_launch()))
    assert run.trace.total_instances > 0


def test_bench_golden_gemm(benchmark):
    w = get_workload("kepler", "FGEMM", seed=0)
    w.prepare()
    run = benchmark(lambda: run_kernel(KEPLER_K40C, w.kernel, w.sim_launch()))
    assert run.trace.instances[OpClass.FFMA] > 0


def test_bench_single_injection(benchmark):
    runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=0)
    w = get_workload("kepler", "FMXM", seed=0)
    golden = runner.golden(w)
    group = NvBitFi().site_groups(w)[0]
    size = int(group.size(golden.trace))
    rng = np.random.default_rng(1)

    def one():
        return runner.inject_once(w, group, int(rng.integers(0, size)), rng)

    record = benchmark(one)
    assert record.outcome is not None


def test_bench_lane_throughput(benchmark):
    """Raw DSL op throughput: a 64-iteration FMA chain over 2,048 lanes."""
    from repro.arch.dtypes import DType
    from repro.sim.launch import LaunchConfig

    def kernel(ctx):
        a = ctx.alloc("a", np.ones(2048, dtype=np.float32), DType.FP32)
        x = ctx.ld(a, ctx.global_id())
        acc = ctx.const(0.0, DType.FP32)
        for _ in ctx.range(64, unroll=8):
            acc = ctx.fma(x, 0.5, acc)
        ctx.st(a, ctx.global_id(), acc)
        return {"a": ctx.read_buffer(a)}

    run = benchmark(lambda: run_kernel(KEPLER_K40C, kernel, LaunchConfig(16, 128)))
    assert run.trace.instances[OpClass.FFMA] == 64 * 2048
