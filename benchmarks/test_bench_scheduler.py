"""Bench + ablation: roofline vs cycle-level scheduler timing.

Cross-validates the fast analytic IPC model against the detailed warp
scheduler on every Kepler code's measured instruction mix, and reports the
per-code agreement ratio.  A drifting ratio here would silently distort
the φ factor that both Figure 6 sides depend on.
"""

import numpy as np

from repro.arch.devices import KEPLER_K40C
from repro.arch.occupancy import occupancy
from repro.profiling import Profiler
from repro.sim.scheduler import WarpScheduler, stream_from_trace_counts
from repro.workloads.registry import get_workload

CODES = ("FMXM", "FHOTSPOT", "MERGESORT", "NW", "CCL", "FGAUSSIAN")


def _agreement():
    profiler = Profiler(KEPLER_K40C)
    ratios = {}
    for code in CODES:
        workload = get_workload("kepler", code, seed=0)
        run = profiler.golden_run(workload)
        metrics = profiler.metrics(workload)
        occ_inputs = workload.reference_occupancy_inputs(KEPLER_K40C)
        occ = occupancy(
            KEPLER_K40C,
            activity_factor=run.trace.activity_factor,
            **occ_inputs,
        )
        warps = max(1, occ.active_warps_per_sm)
        stream = stream_from_trace_counts(dict(run.trace.instances), length=384)
        detailed = WarpScheduler(KEPLER_K40C, ilp=workload.spec.ilp).simulate(stream, warps)
        ratios[code] = detailed.ipc / max(metrics.ipc, 1e-6)
    return ratios


def test_bench_scheduler_vs_roofline(benchmark):
    ratios = benchmark.pedantic(_agreement, rounds=1, iterations=1)
    values = np.array(list(ratios.values()))
    # the models must agree within an order of magnitude on every code
    assert (values > 0.1).all() and (values < 10.0).all()
    benchmark.extra_info["detailed_over_roofline_ipc"] = {
        code: round(r, 2) for code, r in ratios.items()
    }
