"""Bench: parallel campaign throughput (repro.exec).

Times one 200-injection NVBitFI campaign serially and fanned out over a
process pool, asserting the results are bit-identical and — on machines
with enough cores — that the pool delivers a real speedup.
"""

import os
import time

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.exec.engine import ProcessExecutor
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi
from repro.workloads.registry import get_workload

INJECTIONS = 200
PARALLEL_WORKERS = 4


def _run_campaign(executor=None, injections=INJECTIONS):
    runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=0, executor=executor)
    workload = get_workload("kepler", "FMXM", seed=0)
    return runner.run(workload, injections)


def test_bench_parallel_campaign(benchmark):
    serial_started = time.perf_counter()
    serial = _run_campaign()
    serial_seconds = time.perf_counter() - serial_started

    with ProcessExecutor(PARALLEL_WORKERS) as executor:
        _run_campaign(executor, injections=8)  # fork the pool outside the timed run
        parallel = benchmark.pedantic(
            lambda: _run_campaign(executor), rounds=1, iterations=1
        )
    parallel_seconds = benchmark.stats["mean"]

    assert parallel.records == serial.records, "parallel campaign must be bit-identical"

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    benchmark.extra_info["injections"] = INJECTIONS
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert speedup >= 1.5, (
            f"workers={PARALLEL_WORKERS} gave only {speedup:.2f}x over serial"
        )
    else:
        pytest.skip(
            f"only {os.cpu_count()} CPU(s): speedup assertion needs "
            f">= {PARALLEL_WORKERS} cores (measured {speedup:.2f}x)"
        )
