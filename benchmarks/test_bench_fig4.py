"""Bench: regenerate Figure 4 (AVF campaigns, SASSIFI + NVBitFI)."""

from repro.experiments.fig4 import FIG4_KEPLER, FIG4_VOLTA, run_fig4


def test_bench_fig4(benchmark, session):
    rows, report = benchmark.pedantic(
        lambda: run_fig4(session=session), rounds=1, iterations=1
    )
    assert len(rows) == 2 * len(FIG4_KEPLER) + len(FIG4_VOLTA)
    for row in rows:
        assert abs(row["SDC"] + row["DUE"] + row["Masked"] - 1.0) < 1e-9
    benchmark.extra_info["total_injections"] = sum(r["injections"] for r in rows)
