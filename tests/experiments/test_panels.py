"""Figure panel definitions must match the paper's layouts and the
registry — a drifting code list would silently change every average."""

from repro.experiments.fig4 import FIG4_KEPLER, FIG4_VOLTA
from repro.experiments.fig5 import FIG5_CODES
from repro.experiments.fig6 import FIG6_CODES, FIG6_FRAMEWORKS
from repro.experiments.table1 import TABLE1_CODES
from repro.microbench.registry import MICROBENCH_BUILDERS
from repro.workloads.registry import WORKLOAD_BUILDERS


def _known(arch):
    return set(WORKLOAD_BUILDERS[arch])


class TestPanelsResolve:
    def test_table1_codes_exist(self):
        for arch, codes in TABLE1_CODES.items():
            assert set(codes) <= _known(arch)

    def test_fig4_codes_exist(self):
        assert set(FIG4_KEPLER) <= _known("kepler")
        assert set(FIG4_VOLTA) <= _known("volta")

    def test_fig5_codes_exist(self):
        for (arch, _), codes in FIG5_CODES.items():
            assert set(codes) <= _known(arch)

    def test_fig6_codes_exist(self):
        for (arch, _), codes in FIG6_CODES.items():
            assert set(codes) <= _known(arch)

    def test_fig6_subset_of_fig5(self):
        """Every prediction is compared against a beam run that Figure 5
        also reports (same panels, paper layout)."""
        for key, codes in FIG6_CODES.items():
            assert set(codes) <= set(FIG5_CODES[key]), key


class TestPaperLayouts:
    def test_fig4_kepler_has_ten_codes(self):
        assert len(FIG4_KEPLER) == 10

    def test_fig4_volta_skips_half_precision(self):
        """NVBitFI cannot inject FP16, so Figure 4's Volta panel has no
        H-prefixed configurations."""
        assert not any(code.startswith("H") for code in FIG4_VOLTA)

    def test_fig5_kepler_ecc_off_is_nine_codes(self):
        assert len(FIG5_CODES[("kepler", "off")]) == 9

    def test_fig5_kepler_ecc_on_is_thirteen_codes(self):
        assert len(FIG5_CODES[("kepler", "on")]) == 13

    def test_fig6_volta_ecc_off_is_precision_triples(self):
        codes = FIG6_CODES[("volta", "off")]
        for family in ("MXM", "LAVA", "HOTSPOT"):
            assert {f"H{family}", f"F{family}", f"D{family}"} <= set(codes)

    def test_frameworks_per_architecture(self):
        assert FIG6_FRAMEWORKS["kepler"] == ("sassifi", "nvbitfi")
        assert FIG6_FRAMEWORKS["volta"] == ("nvbitfi",)

    def test_volta_microbench_panel_matches_fig3(self):
        names = list(MICROBENCH_BUILDERS["volta"])
        # precision sweep order: H*, F*, D*, I*, then MMA + memory rows
        assert names.index("HADD") < names.index("FADD") < names.index("DADD")
        assert names.index("HMMA") < names.index("LDST")

    def test_proprietary_rows_absent_from_kepler_fig4(self):
        """SASSIFI/NVBitFI cannot inject Kepler GEMM/YOLO — Figure 4's
        left panel must not list them."""
        for code in FIG4_KEPLER:
            assert code not in ("FGEMM", "FYOLOV2", "FYOLOV3")
