"""DUE experiment semantics at reduced scale."""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.due import run_due
from repro.experiments.session import ExperimentSession


@pytest.fixture(scope="module")
def due_rows():
    session = ExperimentSession(
        ExperimentConfig(injections=60, beam_fault_evals=60, memory_avf_strikes=12)
    )
    rows, report = run_due(session=session)
    return rows, report


class TestDueTable:
    def test_four_panels(self, due_rows):
        rows, _ = due_rows
        assert [(r["device"], r["ECC"]) for r in rows] == [
            ("Tesla K40c", "OFF"), ("Tesla K40c", "ON"),
            ("Tesla V100", "OFF"), ("Tesla V100", "ON"),
        ]

    def test_always_a_large_underestimation(self, due_rows):
        """The §VII-B direction must hold in every panel: either a large
        finite factor or codes whose prediction is exactly zero."""
        rows, _ = due_rows
        for row in rows:
            factor = row["beam/pred DUE factor"]
            assert math.isinf(factor) or factor > 5.0 or row["unbounded codes"] > 0

    def test_unbounded_counts_bounded_by_panel(self, due_rows):
        rows, _ = due_rows
        for row in rows:
            assert 0 <= row["unbounded codes"] <= row["codes"]

    def test_ecc_on_worse_than_off(self, due_rows):
        """ECC ON removes the (predictable) delivered-memory DUE channel,
        so its underestimation must be at least as severe: more unbounded
        codes or a larger factor."""
        rows, _ = due_rows
        by = {(r["device"], r["ECC"]): r for r in rows}
        for device in ("Tesla K40c", "Tesla V100"):
            off, on = by[(device, "OFF")], by[(device, "ON")]
            worse = (
                on["unbounded codes"] / on["codes"]
                >= off["unbounded codes"] / off["codes"]
            ) or (
                math.isinf(on["beam/pred DUE factor"])
                or on["beam/pred DUE factor"] >= off["beam/pred DUE factor"]
            )
            assert worse, device

    def test_report_renders(self, due_rows):
        _, report = due_rows
        assert "underestimation" in report


class TestTwoTermRepair:
    """The two-term DUE model (Eq. 2 + uncore FIT term) demonstrably
    narrows the reproduced Fig. 6 DUE gap."""

    def test_two_term_factor_is_always_finite(self, due_rows):
        """The uncore term is strictly positive for every live workload, so
        the two-term prediction is never the paper's unbounded zero."""
        rows, _ = due_rows
        for row in rows:
            assert math.isfinite(row["two-term factor"]), (row["device"], row["ECC"])

    def test_two_term_narrows_every_clean_panel(self, due_rows):
        """Where the core-only factor is well-defined over the same codes
        (no zero predictions), adding the uncore term strictly shrinks it.
        Panels *with* unbounded codes are repaired more fundamentally: an
        infinite/undefined factor becomes a finite one (test above)."""
        rows, _ = due_rows
        for row in rows:
            core = row["beam/pred DUE factor"]
            if row["unbounded codes"] == 0 and math.isfinite(core):
                assert row["two-term factor"] < core, (row["device"], row["ECC"])
