"""Fault-model ablation and data export."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import export_all
from repro.experiments.faultmodels import model_sensitivity, run_faultmodel_ablation
from repro.sim.injection import FaultModel


@pytest.fixture(scope="module")
def ablation_rows():
    rows, report = run_faultmodel_ablation(
        ExperimentConfig(injections=40), codes=("FMXM", "MERGESORT")
    )
    return rows, report


class TestFaultModelAblation:
    def test_all_models_covered(self, ablation_rows):
        rows, _ = ablation_rows
        for row in rows:
            for model in FaultModel:
                assert model.value in row
                assert 0.0 <= row[model.value] <= 1.0

    def test_report_renders(self, ablation_rows):
        _, report = ablation_rows
        assert "single_bit" in report and "FMXM" in report

    def test_sensitivity_metric(self, ablation_rows):
        rows, _ = ablation_rows
        assert model_sensitivity(rows) >= 0.0

    def test_sensitivity_on_synthetic_rows(self):
        rows = [{"code": "X", "a": 0.2, "b": 0.4}]
        assert model_sensitivity(rows) == pytest.approx(1.0)

    def test_deterministic(self):
        config = ExperimentConfig(injections=30)
        a, _ = run_faultmodel_ablation(config, codes=("MERGESORT",))
        b, _ = run_faultmodel_ablation(config, codes=("MERGESORT",))
        assert a == b


class TestExport:
    def test_export_writes_all_artifacts(self, tmp_path):
        manifest = export_all(tmp_path, preset="smoke", seed=0)
        expected = {"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "due", "faultmodels"}
        assert expected <= set(manifest)
        for name in expected:
            assert (tmp_path / f"{name}.csv").exists()
            assert manifest[name]["rows"] > 0
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk["_meta"]["preset"] == "smoke"
        # checksums in the manifest match the files
        import hashlib

        for name in expected:
            digest = hashlib.sha256((tmp_path / f"{name}.csv").read_bytes()).hexdigest()
            assert digest == manifest[name]["sha256"]
