"""Experiment runners: every paper artifact regenerates end to end.

These run at the tiny "smoke" scale — the goal is plumbing correctness;
the quantitative claims are covered by tests/test_paper_claims.py.
"""

import pytest

from repro.arch.ecc import EccMode
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, get_preset
from repro.experiments.session import ExperimentSession
from repro.experiments.table1 import TABLE1_CODES, run_table1
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig4 import sassifi_nvbitfi_gap


@pytest.fixture(scope="module")
def session():
    return ExperimentSession(ExperimentConfig(injections=30, beam_fault_evals=40, memory_avf_strikes=8))


class TestConfig:
    def test_presets_exist(self):
        for name in ("smoke", "quick", "full", "paper"):
            assert get_preset(name).injections > 0

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            get_preset("debug")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(injections=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(beam_mode="exact")


class TestSessionCaching:
    def test_workload_cached(self, session):
        assert session.workload("kepler", "FMXM") is session.workload("kepler", "FMXM")

    def test_metrics_cached(self, session):
        assert session.metrics("kepler", "CCL") is session.metrics("kepler", "CCL")

    def test_campaign_cached(self, session):
        a = session.campaign("kepler", "nvbitfi", "FGAUSSIAN")
        b = session.campaign("kepler", "NVBITFI", "FGAUSSIAN")
        assert a is b

    def test_beam_cached(self, session):
        a = session.beam("kepler", "FADD", EccMode.ON, microbench=True)
        b = session.beam("kepler", "FADD", EccMode.ON, microbench=True)
        assert a is b

    def test_unknown_arch(self, session):
        with pytest.raises(ConfigurationError):
            session.device("pascal")


class TestSubstitutionRules:
    def test_proprietary_kepler_borrows_volta(self, session):
        """§III-D: Kepler GEMM/YOLO AVFs come from Volta NVBitFI."""
        campaign, note = session.avf_source_campaign("kepler", "sassifi", "FGEMM")
        assert campaign.device == "Tesla V100"
        assert "Volta NVBitFI" in note

    def test_native_campaign_has_no_note(self, session):
        campaign, note = session.avf_source_campaign("kepler", "nvbitfi", "FMXM")
        assert campaign.device == "Tesla K40c"
        assert note == ""

    def test_fp16_falls_back_to_fp32_avfs(self, session):
        """§VII-A: NVBitFI cannot inject FP16 — H codes reuse F AVFs."""
        from repro.arch.isa import OpCategory

        avf_sdc, _, note = session.category_avfs("volta", "nvbitfi", "HMXM")
        assert "FP16 AVFs from FP32 variant" in note
        assert OpCategory.FMA in avf_sdc


class TestRunners:
    def test_table1(self, session):
        rows, report = run_table1(session=session)
        assert len(rows["kepler"]) == len(TABLE1_CODES["kepler"])
        assert len(rows["volta"]) == len(TABLE1_CODES["volta"])
        assert "Occupancy" in report
        for row in rows["kepler"]:
            assert 0.0 <= row["Occupancy"] <= 1.0
            assert row["IPC"] >= 0.0

    def test_fig1_percentages(self, session):
        rows, report = run_fig1(session=session)
        for arch_rows in rows.values():
            for row in arch_rows:
                total = sum(v for k, v in row.items() if k != "code")
                assert total == pytest.approx(100.0, abs=1.0)

    def test_fig1_mma_only_for_tensor_codes(self, session):
        rows, _ = run_fig1(session=session)
        for row in rows["volta"]:
            if "MMA" in row["code"]:
                assert row["MMA"] > 50.0
            else:
                assert row["MMA"] == 0.0
        for row in rows["kepler"]:
            assert row["MMA"] == 0.0

    def test_gap_helper(self):
        rows = [
            {"arch": "kepler", "code": "A", "framework": "SASSIFI", "SDC": 0.4},
            {"arch": "kepler", "code": "A", "framework": "NVBITFI", "SDC": 0.5},
        ]
        assert sassifi_nvbitfi_gap(rows) == pytest.approx(0.25)


class TestCli:
    def test_main_runs_table1(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table1", "--preset", "smoke", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.csv").exists()
