"""Error-provenance experiment."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.provenance import (
    dues_mostly_outside_functional_units,
    memory_dominates_ecc_off,
    run_provenance,
)
from repro.experiments.session import ExperimentSession


@pytest.fixture(scope="module")
def provenance():
    session = ExperimentSession(ExperimentConfig(beam_fault_evals=60, injections=30))
    return run_provenance(session=session)


class TestProvenance:
    def test_rows_cover_both_ecc_modes(self, provenance):
        rows, _ = provenance
        eccs = {(r["code"], r["ECC"]) for r in rows}
        assert ("FMXM", "OFF") in eccs and ("FMXM", "ON") in eccs

    def test_shares_sum_to_100(self, provenance):
        rows, _ = provenance
        for row in rows:
            for tag in ("SDC", "DUE"):
                total = sum(v for k, v in row.items() if k.startswith(tag))
                assert total == pytest.approx(100.0, abs=1.0) or total == 0.0

    def test_ecc_on_zeroes_memory_sdc(self, provenance):
        """SECDED corrects delivered memory faults: no memory SDCs remain."""
        rows, _ = provenance
        for row in rows:
            if row["ECC"] == "ON":
                assert row["SDC memories"] == 0.0

    def test_paper_claims(self, provenance):
        rows, _ = provenance
        assert memory_dominates_ecc_off(rows)
        assert dues_mostly_outside_functional_units(rows)

    def test_report_renders(self, provenance):
        _, report = provenance
        assert "Error provenance" in report
        assert "hidden resources" in report
