"""EXPERIMENTS.md generator — structural checks at smoke scale."""

import pytest

from repro.experiments.reportgen import PAPER_DUE, PAPER_FIG6_AVERAGES, PAPER_TABLE1, generate


@pytest.fixture(scope="module")
def report():
    return generate(preset="smoke", seed=0)


class TestReport:
    def test_all_sections_present(self, report):
        for heading in (
            "# EXPERIMENTS",
            "## Table I",
            "## Figure 1",
            "## Figure 3",
            "## Figure 4",
            "## Figure 5",
            "## Figure 6",
            "## §VII-B — DUE underestimation",
            "## Error provenance",
            "## Known divergences",
        ):
            assert heading in report, heading

    def test_every_paper_reference_value_rendered(self, report):
        for device, ecc in PAPER_DUE:
            assert device in report
        assert "120×" in report and "46,700×" in report

    def test_claim_verdicts_rendered(self, report):
        assert report.count("✅") + report.count("⚠️") >= 15

    def test_rank_correlations_rendered(self, report):
        assert "Spearman" in report
        assert "ρ(IPC)" in report

    def test_within_5x_headline(self, report):
        assert "within 5× of the beam measurement" in report

    def test_table1_paper_columns(self, report):
        # spot-check a few of the hard-coded paper values appear verbatim
        assert str(PAPER_TABLE1["kepler"]["FGEMM"][0]) in report  # 4.94
        assert "IPC (paper)" in report

    def test_fig6_panel_averages_table(self, report):
        assert "panel | paper average | measured average" in report
        assert len(PAPER_FIG6_AVERAGES) == 6
