"""Statistics: Poisson/Wilson intervals, ratio conventions, estimates."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Estimate,
    poisson_ci,
    poisson_rate_estimate,
    proportion_estimate,
    ratio,
    signed_ratio,
    wilson_ci,
)


class TestPoissonCi:
    def test_zero_count_lower_bound_is_zero(self):
        lo, hi = poisson_ci(0)
        assert lo == 0.0
        assert hi > 0.0

    def test_known_value_count_10(self):
        # exact (Garwood) 95% interval for n=10: (4.795, 18.39)
        lo, hi = poisson_ci(10)
        assert lo == pytest.approx(4.795, rel=1e-3)
        assert hi == pytest.approx(18.39, rel=1e-3)

    def test_interval_contains_count(self):
        for count in (1, 5, 50, 500):
            lo, hi = poisson_ci(count)
            assert lo < count < hi

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            poisson_ci(-1)

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            poisson_ci(5, confidence=1.5)

    @given(st.integers(min_value=1, max_value=10000))
    def test_interval_width_shrinks_relatively(self, count):
        lo, hi = poisson_ci(count)
        assert (hi - lo) / count < 6.0  # worst case at count=1: ~5.5
        assert lo >= 0.0


class TestWilsonCi:
    def test_half_proportion_symmetric(self):
        lo, hi = wilson_ci(50, 100)
        assert lo == pytest.approx(1.0 - hi, abs=1e-9)

    def test_extremes_clamped(self):
        lo, hi = wilson_ci(0, 20)
        assert lo == 0.0
        lo, hi = wilson_ci(20, 20)
        assert hi == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_ci(5, 0)
        with pytest.raises(ValueError):
            wilson_ci(11, 10)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=200))
    def test_interval_contains_mle_ish(self, s, n):
        if s > n:
            s = n
        lo, hi = wilson_ci(s, n)
        assert 0.0 <= lo <= hi <= 1.0

    def test_paper_campaign_sizing(self):
        """10,000 injections keep the 95% interval below 5% half-width for
        mid-range AVFs (the paper's campaign sizing criterion, §III-D)."""
        lo, hi = wilson_ci(5000, 10000)
        assert (hi - lo) / 2 < 0.05


class TestRatios:
    def test_plain_ratio(self):
        assert ratio(10.0, 2.0) == 5.0

    def test_zero_prediction(self):
        assert ratio(1.0, 0.0) == math.inf
        assert ratio(0.0, 0.0) == 1.0

    def test_signed_ratio_positive_when_beam_higher(self):
        assert signed_ratio(10.0, 2.0) == pytest.approx(5.0)

    def test_signed_ratio_negative_inverse_when_prediction_higher(self):
        assert signed_ratio(2.0, 10.0) == pytest.approx(-5.0)

    def test_signed_ratio_equal_is_one(self):
        assert signed_ratio(3.0, 3.0) == pytest.approx(1.0)

    @given(st.floats(min_value=1e-6, max_value=1e6), st.floats(min_value=1e-6, max_value=1e6))
    def test_signed_ratio_magnitude_at_least_one(self, m, p):
        assert abs(signed_ratio(m, p)) >= 1.0 - 1e-12

    @given(st.floats(min_value=1e-6, max_value=1e6), st.floats(min_value=1e-6, max_value=1e6))
    def test_signed_ratio_antisymmetric(self, m, p):
        a = signed_ratio(m, p)
        b = signed_ratio(p, m)
        assert abs(a) == pytest.approx(abs(b), rel=1e-9)
        if abs(m - p) > 1e-9 * max(m, p):
            assert (a > 0) != (b > 0)


class TestEstimates:
    def test_estimate_validates_interval(self):
        with pytest.raises(ValueError):
            Estimate(value=5.0, lower=6.0, upper=7.0)

    def test_scaled(self):
        est = Estimate(2.0, 1.0, 3.0).scaled(10.0)
        assert (est.value, est.lower, est.upper) == (20.0, 10.0, 30.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            Estimate(2.0, 1.0, 3.0).scaled(-1.0)

    def test_half_width(self):
        assert Estimate(2.0, 1.0, 3.0).half_width == 1.0

    def test_rate_estimate(self):
        est = poisson_rate_estimate(10, 100.0)
        assert est.value == pytest.approx(0.1)
        assert est.lower < est.value < est.upper

    def test_rate_estimate_rejects_zero_exposure(self):
        with pytest.raises(ValueError):
            poisson_rate_estimate(10, 0.0)

    def test_proportion_estimate(self):
        est = proportion_estimate(30, 100)
        assert est.lower <= 0.3 <= est.upper
