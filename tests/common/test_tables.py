"""Table / CSV / bar-chart rendering."""

import pytest

from repro.common.tables import (
    format_value,
    render_bar_chart,
    render_csv,
    render_table,
    rows_to_markdown,
    unique_preserving,
)

ROWS = [
    {"code": "FMXM", "SDC": 1.5, "DUE": 0.25},
    {"code": "CCL", "SDC": 0.1},
]


class TestRenderTable:
    def test_contains_all_cells(self):
        out = render_table(ROWS)
        assert "FMXM" in out and "CCL" in out and "1.5" in out

    def test_missing_value_dash(self):
        out = render_table(ROWS)
        assert "-" in out.splitlines()[-1]

    def test_title(self):
        assert render_table(ROWS, title="T1").startswith("T1\n")

    def test_explicit_columns(self):
        out = render_table(ROWS, columns=["SDC", "code"])
        header = out.splitlines()[0]
        assert header.index("SDC") < header.index("code")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            render_table([], columns=None)

    def test_alignment(self):
        lines = render_table(ROWS).splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1


class TestCsv:
    def test_header_and_rows(self):
        out = render_csv(ROWS)
        lines = out.strip().splitlines()
        assert lines[0] == "code,SDC,DUE"
        assert lines[1].startswith("FMXM,1.5")
        assert len(lines) == 3

    def test_comma_quoting(self):
        out = render_csv([{"a": "x,y"}])
        assert '"x,y"' in out


class TestBarChart:
    def test_bars_scale(self):
        out = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 2 * a_line.count("#")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart([], [])

    def test_all_zero_values(self):
        out = render_bar_chart(["a"], [0.0])
        assert "#" not in out


class TestMisc:
    def test_format_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_format_none(self):
        assert format_value(None) == "-"

    def test_markdown(self):
        md = rows_to_markdown(ROWS)
        assert md.startswith("| code | SDC | DUE |")
        assert "| FMXM |" in md

    def test_unique_preserving(self):
        assert unique_preserving(["b", "a", "b", "c", "a"]) == ["b", "a", "c"]
