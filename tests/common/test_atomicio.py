"""Atomic write and append-only history helpers."""

import json

from repro.common.atomicio import (
    append_jsonl,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)


def test_atomic_write_text_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "hello\n")
    assert target.read_text() == "hello\n"
    assert not list(tmp_path.glob("*.tmp"))


def test_atomic_write_json_round_trips(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_json(target, {"a": 1})
    assert json.loads(target.read_text()) == {"a": 1}
    assert target.read_text().endswith("\n")


def test_append_jsonl_accumulates_in_order(tmp_path):
    log = tmp_path / "history.jsonl"
    append_jsonl(log, {"n": 1})
    append_jsonl(log, {"n": 2})
    assert read_jsonl(log) == [{"n": 1}, {"n": 2}]


def test_read_jsonl_skips_torn_tail_and_blank_lines(tmp_path):
    log = tmp_path / "history.jsonl"
    append_jsonl(log, {"n": 1})
    with open(log, "a", encoding="utf-8") as handle:
        handle.write("\n")
        handle.write('{"n": 2, "torn...')  # crash mid-append
    assert read_jsonl(log) == [{"n": 1}]


def test_read_jsonl_missing_file_reads_empty(tmp_path):
    assert read_jsonl(tmp_path / "absent.jsonl") == []
