"""Units: fluence, FIT conversions, the paper's headline exposure math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.units import (
    BEAM_ACCELERATION_FACTOR,
    CHIPIR_FLUX_N_CM2_S,
    FIT_SCALE_HOURS,
    Fluence,
    TERRESTRIAL_FLUX_N_CM2_H,
    cross_section_cm2,
    fit_from_counts,
    fit_from_cross_section,
    fit_to_mtbf_hours,
)


class TestFluence:
    def test_from_beam_hours_uses_flux(self):
        f = Fluence.from_beam_hours(1.0)
        assert f.n_per_cm2 == pytest.approx(3600.0 * CHIPIR_FLUX_N_CM2_S)

    def test_natural_hours_round_trip(self):
        f = Fluence(n_per_cm2=TERRESTRIAL_FLUX_N_CM2_H * 100.0)
        assert f.natural_hours == pytest.approx(100.0)

    def test_negative_fluence_rejected(self):
        with pytest.raises(ValueError):
            Fluence(-1.0)

    def test_negative_hours_rejected(self):
        with pytest.raises(ValueError):
            Fluence.from_beam_hours(-0.1)

    def test_addition(self):
        total = Fluence(10.0) + Fluence(5.0)
        assert total.n_per_cm2 == 15.0

    def test_paper_13_million_years(self):
        """1,224 accelerated beam hours account for "more than 13 million
        years" of natural exposure (paper §III-C) — at the quoted ChipIR
        peak flux the bound is comfortably exceeded."""
        f = Fluence.from_beam_hours(1224.0)
        assert f.natural_years > 1.3e7

    def test_acceleration_factor_is_8_orders(self):
        assert 1e8 < BEAM_ACCELERATION_FACTOR < 1e10


class TestFitMath:
    def test_cross_section(self):
        sigma = cross_section_cm2(10.0, Fluence(1e10))
        assert sigma == pytest.approx(1e-9)

    def test_cross_section_zero_fluence(self):
        with pytest.raises(ValueError):
            cross_section_cm2(1.0, Fluence(0.0))

    def test_fit_from_cross_section(self):
        fit = fit_from_cross_section(1.0 / (TERRESTRIAL_FLUX_N_CM2_H * FIT_SCALE_HOURS))
        assert fit == pytest.approx(1.0)

    def test_fit_from_counts_composes(self):
        f = Fluence(2e12)
        assert fit_from_counts(4.0, f) == pytest.approx(
            fit_from_cross_section(cross_section_cm2(4.0, f))
        )

    def test_mtbf_inverse_of_fit(self):
        assert fit_to_mtbf_hours(1e9) == pytest.approx(1.0)
        assert fit_to_mtbf_hours(0.0) == math.inf

    @given(st.floats(min_value=1e-3, max_value=1e6), st.floats(min_value=1e6, max_value=1e14))
    def test_fit_linear_in_errors(self, errors, fluence):
        """FIT must scale linearly with observed errors at fixed fluence —
        the invariant behind 'FIT does not depend on execution time'."""
        f = Fluence(fluence)
        assert fit_from_counts(2 * errors, f) == pytest.approx(2 * fit_from_counts(errors, f))

    @given(st.floats(min_value=1e-3, max_value=1e6), st.floats(min_value=1e6, max_value=1e14))
    def test_fit_invariant_to_double_exposure(self, errors, fluence):
        """Twice the errors over twice the fluence = same FIT (§III-C)."""
        one = fit_from_counts(errors, Fluence(fluence))
        two = fit_from_counts(2 * errors, Fluence(2 * fluence))
        assert two == pytest.approx(one)
