"""Seeded substream discipline: reproducibility + independence."""

import numpy as np
import pytest

from repro.common.rng import RngFactory, substream


class TestSubstream:
    def test_deterministic(self):
        a = substream(42, "beam", "FADD").random(8)
        b = substream(42, "beam", "FADD").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        a = substream(42, "beam", "FADD").random(8)
        b = substream(42, "beam", "FMUL").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = substream(1, "x").random(8)
        b = substream(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_non_string_names_allowed(self):
        a = substream(0, "campaign", 3, True).random(4)
        b = substream(0, "campaign", 3, True).random(4)
        np.testing.assert_array_equal(a, b)

    def test_draw_count_isolation(self):
        """Consuming extra draws from one stream must not shift another —
        the property a single shared RNG would lack."""
        a1 = substream(7, "a")
        _ = a1.random(1000)
        b_after = substream(7, "b").random(4)
        b_fresh = substream(7, "b").random(4)
        np.testing.assert_array_equal(b_after, b_fresh)


class TestRngFactory:
    def test_requires_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("nope")

    def test_stream_matches_substream(self):
        f = RngFactory(9)
        np.testing.assert_array_equal(
            f.stream("x", "y").random(4), substream(9, "x", "y").random(4)
        )

    def test_spawn_changes_root(self):
        parent = RngFactory(5)
        child = parent.spawn("rep", 1)
        assert child.root_seed != parent.root_seed
        # spawning is itself deterministic
        assert parent.spawn("rep", 1).root_seed == child.root_seed

    def test_integer_seeds_deterministic_and_distinct(self):
        f = RngFactory(3)
        seeds = list(f.integer_seeds(10, "campaign"))
        assert seeds == list(f.integer_seeds(10, "campaign"))
        assert len(set(seeds)) == 10

    def test_rough_uniformity(self):
        values = substream(0, "uniformity").random(20000)
        assert abs(values.mean() - 0.5) < 0.02
