"""The telemetry-report summarizer (repro.telemetry.report)."""

import pytest

from repro.telemetry.report import (
    final_metrics,
    instruction_mix_rows,
    render_report,
    span_rollup,
)


def _synthetic_events():
    return [
        {"kind": "span_start", "name": "campaign", "span": 1, "depth": 0},
        {"kind": "task", "name": "task"},
        {"kind": "task", "name": "task"},
        {"kind": "span_end", "name": "campaign", "span": 1, "seconds": 0.5},
        {"kind": "span_end", "name": "campaign", "span": 2, "seconds": 1.5},
        {
            "kind": "metrics",
            "name": "registry",
            "data": {
                "counters": {
                    "sim.instructions.FFMA": 75.0,
                    "sim.instructions.LDG": 25.0,
                    "exec.tasks": 2.0,
                },
                "gauges": {},
                "histograms": {
                    "span.campaign.seconds": {"count": 2, "sum": 2.0, "mean": 1.0, "p95": 2.5}
                },
            },
        },
    ]


def test_final_metrics_takes_the_last_dump():
    events = _synthetic_events()
    assert final_metrics(events)["counters"]["exec.tasks"] == 2.0
    assert final_metrics([]) == {}


def test_span_rollup_aggregates_by_name():
    (row,) = span_rollup(_synthetic_events())
    assert row["span"] == "campaign"
    assert row["calls"] == 2
    assert row["total_s"] == pytest.approx(2.0)
    assert row["max_s"] == pytest.approx(1.5)


def test_instruction_mix_rows_sorted_by_count():
    rows = instruction_mix_rows(
        {"sim.instructions.FFMA": 75.0, "sim.instructions.LDG": 25.0, "other": 9.0}
    )
    assert [r["opclass"] for r in rows] == ["FFMA", "LDG"]
    assert rows[0]["mix_%"] == pytest.approx(75.0)
    assert instruction_mix_rows({"other": 1.0}) == []


def test_render_report_contains_all_sections():
    report = render_report(_synthetic_events())
    assert "2 task completions" in report
    assert "Instructions retired per opcode class" in report
    assert "FFMA" in report
    assert "Counters" in report and "exec.tasks" in report
    assert "Histograms" in report and "span.campaign.seconds" in report
    assert "Spans" in report


def test_render_report_caps_the_counter_table():
    events = [
        {
            "kind": "metrics",
            "data": {"counters": {f"c{i:03d}": float(i) for i in range(50)}, "histograms": {}},
        }
    ]
    report = render_report(events, top=5)
    assert "showing top 5 of 50 counters" in report


def test_cli_round_trip(tmp_path, capsys):
    """--trace-out then telemetry-report: the read side of the trace."""
    from repro.telemetry import telemetry_session
    from repro.telemetry.report import main

    path = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=path) as telemetry:
        with telemetry.span("campaign"):
            telemetry.count("sim.instructions.FADD", 10)
            telemetry.task_done()
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "FADD" in out
    assert "1 task completions" in out


def test_cli_subcommand_dispatches_from_experiments(tmp_path, capsys):
    """`python -m repro.experiments telemetry-report TRACE` summarizes."""
    from repro.experiments.__main__ import main
    from repro.telemetry import telemetry_session

    path = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=path) as telemetry:
        telemetry.count("exec.tasks", 4)
    assert main(["telemetry-report", str(path)]) == 0
    assert "exec.tasks" in capsys.readouterr().out
