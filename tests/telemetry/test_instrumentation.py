"""Instrumented call sites report real work — and the instruction counters
cross-check the Figure 1 profiler (ISSUE 2 acceptance criterion)."""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.profiling.profiler import Profiler
from repro.sim.launch import run_kernel
from repro.telemetry import MemorySink, telemetry_session
from repro.telemetry.report import INSTRUCTIONS_PREFIX, instruction_mix_rows
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("kepler", "FMXM", seed=5)


def test_kernel_runs_count_per_opcode_class(workload):
    with telemetry_session() as telemetry:
        run = run_kernel(KEPLER_K40C, workload.kernel, workload.sim_launch(), ecc=EccMode.ON)
        counters = dict(telemetry.registry.counters)
    assert counters["sim.kernel_runs"] == 1.0
    for op, instances in run.trace.instances.items():
        assert counters[f"{INSTRUCTIONS_PREFIX}{op.name}"] == instances
    assert counters["sim.instructions_total"] == run.trace.total_instances


def test_warp_scheduler_counts_cycles_and_issues():
    from repro.arch.isa import OpClass
    from repro.sim.scheduler import WarpScheduler

    with telemetry_session() as telemetry:
        result = WarpScheduler(KEPLER_K40C).simulate([OpClass.FADD, OpClass.LDG], 4)
        counters = dict(telemetry.registry.counters)
    assert counters["scheduler.simulations"] == 1.0
    assert counters["scheduler.cycles"] == result.cycles
    assert counters["scheduler.issued"] == result.issued
    assert any(k.startswith("scheduler.unit.") for k in counters)
    assert telemetry.registry.histograms["span.scheduler.simulate.seconds"].total == 1


def test_instruction_counters_consistent_with_fig1_profiler(workload):
    """The telemetry instruction mix must reproduce the profiler's
    Figure 1 percentages — two independent views of one trace."""
    with telemetry_session() as telemetry:
        metrics = Profiler(KEPLER_K40C).metrics(workload)
        counters = dict(telemetry.registry.counters)

    mix_from_telemetry = {
        row["opclass"]: row["mix_%"] for row in instruction_mix_rows(counters)
    }
    for op, fraction in metrics.instruction_mix.items():
        if fraction > 0:
            assert mix_from_telemetry[op.name] == pytest.approx(100.0 * fraction)
    assert counters["sim.instructions_total"] == metrics.total_instances


def test_sass_interpreter_counts_retired_mnemonics():
    import numpy as np

    from repro.sass import SassKernel, assemble
    from repro.sim import LaunchConfig

    a = np.arange(64, dtype=np.float32)
    kernel = SassKernel(
        assemble(
            ".kernel k\n.buffer a\n.buffer c\n"
            "MOV r0, %gid\nLDG.F32 r1, [a + r0]\nFADD.F32 r1, r1, 1.0\nSTG.F32 [c + r0], r1"
        ),
        {"a": a},
        ("c",),
        {"c": (64,)},
    )
    with telemetry_session() as telemetry:
        run_kernel(KEPLER_K40C, kernel, LaunchConfig(2, 32))
        counters = dict(telemetry.registry.counters)
    # the interpreter executes SIMT-vectorized: one retirement per
    # (warp-synchronous) instruction, not per lane
    for mnemonic in ("MOV", "LDG", "FADD", "STG"):
        assert counters[f"sass.instructions.{mnemonic}"] == 1.0


def test_beam_experiment_emits_spans_and_result_point(workload):
    sink = MemorySink()
    with telemetry_session(sink=sink) as telemetry:
        from repro.beam.experiment import BeamExperiment

        BeamExperiment(KEPLER_K40C, seed=9).run(
            workload, ecc=EccMode.OFF, beam_hours=12, mode="montecarlo", max_fault_evals=10
        )
        counters = dict(telemetry.registry.counters)

    (start,) = [e for e in sink.of_kind("span_start") if e["name"] == "beam"]
    assert start["workload"] == workload.name
    assert start["ecc"] == "off"
    (point,) = [e for e in sink.of_kind("point") if e["name"] == "beam.result"]
    assert point["span"] == start["span"]  # emitted inside the beam span
    assert counters["beam.exposures"] == 1.0
    assert counters["beam.evals"] > 0
    # every evaluated fault has an outcome counter under its resource kind
    assert sum(
        v for k, v in counters.items() if k.startswith("beam.outcome.")
    ) == counters["beam.evals"]


def test_campaign_emits_span_with_outcome_tally(workload):
    sink = MemorySink()
    with telemetry_session(sink=sink):
        from repro.faultsim.campaign import CampaignRunner
        from repro.faultsim.frameworks import NvBitFi

        result = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=7).run(workload, 10)

    (point,) = [e for e in sink.of_kind("point") if e["name"] == "campaign.result"]
    assert point["injections"] == 10
    assert sum(point["outcomes"].values()) == 10
    assert len(sink.of_kind("task")) == 10
    assert result.injections == 10


def test_cli_trace_out_and_report(tmp_path, capsys):
    """--telemetry --trace-out writes a summarizable JSONL trace."""
    from repro.experiments.__main__ import main

    trace = tmp_path / "trace.jsonl"
    rc = main(["fig1", "--preset", "smoke", "--trace-out", str(trace)])
    assert rc == 0
    assert trace.exists()
    capsys.readouterr()  # drop the fig1 report output
    assert main(["telemetry-report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "Instructions retired per opcode class" in out


def test_cli_telemetry_prints_summary(capsys):
    from repro.experiments.__main__ import main

    rc = main(["fig1", "--preset", "smoke", "--telemetry"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Instructions retired per opcode class" in out
    assert "sim.kernel_runs" in out
