"""The unified logging namespace (repro.telemetry.logbridge)."""

import io
import logging

from repro.telemetry import configure_logging, get_logger


def test_loggers_land_under_the_repro_namespace():
    assert get_logger("beam.engine").name == "repro.beam.engine"
    assert get_logger("repro.beam.engine").name == "repro.beam.engine"
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"


def test_instrumented_modules_share_the_namespace():
    """The six unified call sites all hang off the ``repro`` root logger."""
    import importlib

    for name in (
        "repro.beam.engine",
        "repro.beam.experiment",
        "repro.beam.exposure",
        "repro.beam.cross_sections",
        "repro.predict.model",
        "repro.experiments.fig3",
    ):
        module = importlib.import_module(name)
        assert module._log.name.startswith("repro."), name


def test_configure_logging_routes_to_stream():
    stream = io.StringIO()
    configure_logging(logging.DEBUG, stream=stream)
    try:
        get_logger("beam.engine").debug("hello %d", 7)
        out = stream.getvalue()
        assert "repro.beam.engine" in out
        assert "hello 7" in out
        assert "DEBUG" in out
    finally:
        logging.getLogger("repro").setLevel(logging.WARNING)


def test_configure_logging_is_idempotent():
    first, second = io.StringIO(), io.StringIO()
    configure_logging(logging.INFO, stream=first)
    configure_logging(logging.INFO, stream=second)  # replaces, never stacks
    try:
        get_logger("beam").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1
    finally:
        logging.getLogger("repro").setLevel(logging.WARNING)


def test_configure_logging_accepts_level_names():
    stream = io.StringIO()
    root = configure_logging("DEBUG", stream=stream)
    try:
        assert root.level == logging.DEBUG
    finally:
        root.setLevel(logging.WARNING)


def test_quiet_by_default():
    """Library best practice: importing repro must not emit to stderr
    (a NullHandler sits on the root; handlers appear only on opt-in)."""
    root = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
