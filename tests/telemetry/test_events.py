"""Event sinks: JSONL round-trips and fan-out (repro.telemetry.events)."""

import io
import json

from repro.telemetry.events import (
    EventSink,
    FileSink,
    MemorySink,
    NULL_SINK,
    StreamSink,
    TeeSink,
    read_trace,
)


def test_null_sink_discards_quietly():
    NULL_SINK.emit({"kind": "point"})
    NULL_SINK.close()


def test_memory_sink_round_trip():
    sink = MemorySink()
    sink.emit({"kind": "task", "name": "t"})
    sink.emit({"kind": "point", "name": "p"})
    assert [e["kind"] for e in sink.events] == ["task", "point"]
    assert sink.of_kind("task") == [{"kind": "task", "name": "t"}]
    assert not sink.closed
    sink.close()
    assert sink.closed


def test_stream_sink_writes_jsonl():
    buf = io.StringIO()
    sink = StreamSink(buf)
    sink.emit({"kind": "point", "b": 2, "a": 1})
    sink.close()  # caller owns the stream: must stay open
    lines = buf.getvalue().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0]) == {"kind": "point", "a": 1, "b": 2}
    # keys are sorted for greppable, diffable traces
    assert lines[0].index('"a"') < lines[0].index('"b"')


def test_file_sink_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = FileSink(path)
    events = [{"kind": "span_start", "span": 1}, {"kind": "span_end", "span": 1}]
    for e in events:
        sink.emit(e)
    sink.close()
    sink.close()  # idempotent
    assert read_trace(path) == events


def test_file_sink_append_mode(tmp_path):
    path = tmp_path / "trace.jsonl"
    first = FileSink(path)
    first.emit({"n": 1})
    first.close()
    second = FileSink(path, append=True)
    second.emit({"n": 2})
    second.close()
    assert read_trace(path) == [{"n": 1}, {"n": 2}]


def test_file_sink_encodes_non_json_values(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = FileSink(path)
    sink.emit({"kind": "point", "path": tmp_path})  # default=str fallback
    sink.close()
    assert read_trace(path)[0]["path"] == str(tmp_path)


def test_tee_sink_fans_out_and_closes_all(tmp_path):
    a, b = MemorySink(), MemorySink()
    tee = TeeSink(a, b)
    tee.emit({"kind": "task"})
    tee.close()
    assert a.events == b.events == [{"kind": "task"}]
    assert a.closed and b.closed


def test_sinks_satisfy_the_protocol():
    for sink in (NULL_SINK, MemorySink(), StreamSink(io.StringIO()), TeeSink()):
        assert isinstance(sink, EventSink)
