"""Deterministic cross-process aggregation: ``workers=N`` reports exactly
the serial aggregate, for every instrumented engine (ISSUE 2 tentpole)."""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.exec.tasks import ChunkResult
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi
from repro.predict.model import measure_memory_avf
from repro.telemetry import telemetry_session
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("kepler", "FMXM", seed=5)


def _campaign_counters(workload, workers):
    with telemetry_session() as telemetry:
        result = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3, workers=workers).run(
            workload, 24
        )
        counters = dict(telemetry.registry.counters)
    return result, counters


@pytest.mark.parametrize("workers", [2, 4])
def test_campaign_counters_identical_serial_vs_parallel(workload, workers):
    serial_result, serial = _campaign_counters(workload, 1)
    parallel_result, parallel = _campaign_counters(workload, workers)
    assert serial_result.records == parallel_result.records
    assert serial == parallel  # every counter, bit for bit
    # and the aggregate actually saw the work:
    assert serial["campaign.injections"] == 24.0
    assert serial["exec.tasks"] == 24.0
    assert sum(v for k, v in serial.items() if k.startswith("campaign.outcome.")) == 24.0
    assert any(k.startswith("sim.instructions.") for k in serial)


def test_beam_counters_identical_serial_vs_parallel(workload):
    kwargs = dict(ecc=EccMode.OFF, beam_hours=24, mode="montecarlo", max_fault_evals=30)

    def run(workers):
        with telemetry_session() as telemetry:
            result = BeamExperiment(KEPLER_K40C, seed=9, workers=workers).run(
                workload, **kwargs
            )
            return result, dict(telemetry.registry.counters)

    serial_result, serial = run(1)
    parallel_result, parallel = run(2)
    assert serial_result.tallies == parallel_result.tallies
    assert serial == parallel
    assert serial["beam.evals"] > 0
    assert serial["beam.exposures"] == 1.0


def test_memory_avf_counters_identical_serial_vs_parallel(workload):
    def run(workers):
        with telemetry_session() as telemetry:
            avf = measure_memory_avf(KEPLER_K40C, workload, strikes=8, seed=4, workers=workers)
            return avf, dict(telemetry.registry.counters)

    serial_avf, serial = run(1)
    parallel_avf, parallel = run(2)
    assert serial_avf == parallel_avf
    assert serial == parallel
    assert serial["mem_avf.strikes"] == 8.0
    assert sum(v for k, v in serial.items() if k.startswith("mem_avf.outcome.")) == 8.0


def test_chunk_results_ship_snapshots(workload):
    """The wire format: chunk evaluators return ChunkResult with a
    plain-dict snapshot of only the captured per-task metrics."""
    from repro.exec.tasks import CampaignContext, WorkloadHandle
    from repro.exec.worker import run_injection_chunk

    runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3)
    tasks = runner.plan_tasks(workload, 4)
    context = CampaignContext(
        device=KEPLER_K40C,
        framework=runner.framework,
        ecc=runner.ecc.value,
        root_seed=runner.rngs.root_seed,
        workload=WorkloadHandle.wrap(workload),
    )
    chunk = run_injection_chunk(context, tasks)
    assert isinstance(chunk, ChunkResult)
    assert len(chunk.results) == 4
    assert chunk.telemetry["counters"]["campaign.injections"] == 4.0
    # the state rebuild (golden run) stays out of the shipped snapshot: the
    # only kernel runs captured are the per-injection re-executions
    assert chunk.telemetry["counters"]["sim.kernel_runs"] == 4.0
