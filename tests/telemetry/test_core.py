"""The Telemetry context: spans, scoping, capture (repro.telemetry.core)."""

import pytest

from repro.telemetry import (
    MemorySink,
    NULL_SINK,
    Registry,
    Telemetry,
    capture,
    get_telemetry,
    merge_worker_snapshot,
    read_trace,
    set_telemetry,
    telemetry_session,
)


def test_default_context_is_sinkless_but_counts():
    telemetry = get_telemetry()
    assert telemetry.sink is NULL_SINK
    before = telemetry.registry.counter("test.default").value
    telemetry.count("test.default")
    telemetry.emit("point", "ignored")  # no sink: must be a silent no-op
    assert telemetry.registry.counter("test.default").value == before + 1


def test_session_installs_and_restores_the_active_context():
    outer = get_telemetry()
    with telemetry_session() as telemetry:
        assert get_telemetry() is telemetry
        assert telemetry is not outer
        assert isinstance(telemetry.sink, MemorySink)
    assert get_telemetry() is outer


def test_session_emits_final_metrics_and_closes_sink():
    sink = MemorySink()
    with telemetry_session(sink=sink) as telemetry:
        telemetry.count("runs", 3)
    metrics = sink.of_kind("metrics")
    assert len(metrics) == 1
    assert metrics[0]["data"]["counters"] == {"runs": 3.0}
    assert sink.closed


def test_session_restores_on_error():
    outer = get_telemetry()
    with pytest.raises(RuntimeError):
        with telemetry_session():
            raise RuntimeError("boom")
    assert get_telemetry() is outer


def test_session_writes_trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=path) as telemetry:
        telemetry.point("hello", value=1)
    kinds = [e["kind"] for e in read_trace(path)]
    assert kinds == ["point", "metrics"]


def test_span_nesting_order_in_the_event_stream():
    """campaign → task → kernel: ids/parents/depths reconstruct the tree,
    and start/end events arrive in proper nesting order."""
    sink = MemorySink()
    with telemetry_session(sink=sink) as telemetry:
        with telemetry.span("campaign", workload="FMXM"):
            with telemetry.span("task"):
                with telemetry.span("kernel"):
                    pass

    spans = [e for e in sink.events if e["kind"].startswith("span_")]
    assert [(e["kind"], e["name"]) for e in spans] == [
        ("span_start", "campaign"),
        ("span_start", "task"),
        ("span_start", "kernel"),
        ("span_end", "kernel"),
        ("span_end", "task"),
        ("span_end", "campaign"),
    ]
    campaign, task, kernel = spans[0], spans[1], spans[2]
    assert campaign["parent"] is None and campaign["depth"] == 0
    assert task["parent"] == campaign["span"] and task["depth"] == 1
    assert kernel["parent"] == task["span"] and kernel["depth"] == 2
    assert campaign["workload"] == "FMXM"
    for end in spans[3:]:
        assert end["seconds"] >= 0.0
    # durations land in the span latency histograms
    hists = telemetry.registry.histograms
    for name in ("campaign", "task", "kernel"):
        assert hists[f"span.{name}.seconds"].total == 1


def test_events_carry_the_enclosing_span_id():
    sink = MemorySink()
    with telemetry_session(sink=sink) as telemetry:
        with telemetry.span("campaign"):
            telemetry.task_done()
    (task,) = sink.of_kind("task")
    (start,) = sink.of_kind("span_start")
    assert task["span"] == start["span"]
    assert telemetry.registry.counters["exec.tasks"] == 1.0


def test_span_pops_even_on_error():
    telemetry = Telemetry()
    with pytest.raises(ValueError):
        with telemetry.span("outer"):
            raise ValueError("boom")
    assert telemetry._span_stack == []


def test_capture_isolates_increments():
    with telemetry_session() as session_telemetry:
        session_telemetry.count("outside")
        with capture() as registry:
            inner = get_telemetry()
            assert inner is not session_telemetry
            inner.count("inside", 2)
            inner.emit("point", "dropped")  # events in capture scope vanish
        assert get_telemetry() is session_telemetry
        assert registry.counters == {"inside": 2.0}
        assert "inside" not in session_telemetry.registry.counters
        merge_worker_snapshot(registry.snapshot())
        assert session_telemetry.registry.counters["inside"] == 2.0


def test_merge_worker_snapshot_tolerates_empty():
    merge_worker_snapshot(None)
    merge_worker_snapshot({})


def test_set_telemetry_returns_previous():
    fresh = Telemetry(registry=Registry())
    previous = set_telemetry(fresh)
    try:
        assert get_telemetry() is fresh
    finally:
        set_telemetry(previous)
