"""Metric primitives: the exact-merge contract (repro.telemetry.metrics)."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_EDGES,
    Registry,
    VALUE_EDGES,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_buckets_and_moments(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # one per bucket incl. overflow
        assert h.total == 4
        assert h.mean == pytest.approx(555.5 / 4)

    def test_quantile_bounds(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(5000.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == float("inf")
        assert Histogram(edges=(1.0,)).quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=())

    def test_merge_requires_congruent_edges(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_is_associative_and_commutative(self):
        """The fixed-edge design makes merge a per-bucket sum, so any
        grouping/order of worker snapshots yields the same aggregate."""

        def build(values):
            h = Histogram(edges=VALUE_EDGES)
            for v in values:
                h.observe(v)
            return h

        parts = [build([1, 7, 40]), build([300, 2_000]), build([0.5, 9e7, 12])]

        left = build([])
        for h in (parts[0], parts[1]):
            left.merge(h)
        left.merge(parts[2])

        right = build([])
        bc = build([])
        bc.merge(parts[1])
        bc.merge(parts[2])
        right.merge(parts[0])
        right.merge(bc)

        reversed_order = build([])
        for h in reversed(parts):
            reversed_order.merge(h)

        for other in (right, reversed_order):
            assert left.counts == other.counts
            assert left.total == other.total
            assert left.sum == pytest.approx(other.sum)


class TestRegistry:
    def test_lazy_accessors_memoize(self):
        r = Registry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")
        assert bool(r)
        assert not Registry()

    def test_views_are_sorted(self):
        r = Registry()
        r.counter("z").inc()
        r.counter("a").inc(2)
        assert list(r.counters) == ["a", "z"]
        assert r.counters == {"a": 2.0, "z": 1.0}

    def test_snapshot_round_trip(self):
        r = Registry()
        r.counter("runs").inc(7)
        r.gauge("occupancy").set(0.5)
        r.histogram("lat", LATENCY_EDGES).observe(0.01)
        clone = Registry.from_snapshot(r.snapshot())
        assert clone.counters == r.counters
        assert clone.gauges == r.gauges
        assert clone.histograms["lat"].counts == r.histograms["lat"].counts

    def test_merge_order_independent_for_integer_counts(self):
        snaps = []
        for k in range(1, 4):
            part = Registry()
            part.counter("evals").inc(10 * k)
            part.histogram("v", VALUE_EDGES).observe(k)
            snaps.append(part.snapshot())

        forward, backward = Registry(), Registry()
        for s in snaps:
            forward.merge(s)
        for s in reversed(snaps):
            backward.merge(s)
        assert forward.counters == backward.counters == {"evals": 60.0}
        assert forward.histograms["v"].counts == backward.histograms["v"].counts

    def test_merge_ignores_empty(self):
        r = Registry()
        r.merge(None)
        r.merge({})
        assert not r

    def test_as_dict_digest(self):
        r = Registry()
        r.counter("n").inc(3)
        h = r.histogram("lat", (1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        d = r.as_dict()
        assert d["counters"] == {"n": 3.0}
        assert d["histograms"]["lat"]["count"] == 2
        assert d["histograms"]["lat"]["mean"] == pytest.approx(1.0)
