"""SASS interpreter: semantics on the simulator, fault-machinery reuse."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.common.errors import ConfigurationError
from repro.sass import SassKernel, assemble
from repro.sim import LaunchConfig, run_kernel


def _run(text, inputs, outputs, shapes=None, launch=LaunchConfig(2, 32), **kw):
    kernel = SassKernel(assemble(text), inputs, outputs, shapes=shapes, **kw)
    return run_kernel(KEPLER_K40C, kernel, launch)


class TestBasics:
    def test_copy_kernel(self):
        a = np.arange(64, dtype=np.float32)
        run = _run(
            ".kernel k\n.buffer a\n.buffer c\nMOV r0, %gid\nLDG.F32 r1, [a + r0]\nSTG.F32 [c + r0], r1",
            {"a": a}, ("c",), {"c": (64,)},
        )
        np.testing.assert_array_equal(run.outputs["c"], a)

    def test_arithmetic_chain(self):
        a = np.arange(64, dtype=np.float32)
        run = _run(
            """
            .kernel k
            .buffer a
            .buffer c
            MOV r0, %gid
            LDG.F32 r1, [a + r0]
            FMUL.F32 r2, r1, 3.0
            FADD.F32 r2, r2, 1.0
            STG.F32 [c + r0], r2
            """,
            {"a": a}, ("c",), {"c": (64,)},
        )
        np.testing.assert_array_equal(run.outputs["c"], (a * 3 + 1).astype(np.float32))

    def test_integer_ops(self):
        run = _run(
            """
            .kernel k
            .buffer c
            MOV r0, %gid
            IMAD r1, r0, 3, 7
            LOP.XOR r1, r1, 1
            SHF.L r1, r1, 2
            STG.S32 [c + r0], r1
            """,
            {}, ("c",), {"c": (64,)}, dtypes={"c": DType.INT32},
        )
        gid = np.arange(64, dtype=np.int32)
        np.testing.assert_array_equal(run.outputs["c"], ((gid * 3 + 7) ^ 1) << 2)

    def test_specials(self):
        run = _run(
            ".kernel k\n.buffer c\nMOV r0, %gid\nMOV r1, %tid\nMOV r2, %bid\nIMAD r3, r2, 32, r1\nISUB r4, r3, r0\nSTG.S32 [c + r0], r4",
            {}, ("c",), {"c": (64,)}, dtypes={"c": DType.INT32},
        )
        np.testing.assert_array_equal(run.outputs["c"], np.zeros(64, dtype=np.int32))

    def test_loop_accumulation(self):
        run = _run(
            ".kernel k\n.buffer c\nMOV r0, %gid\nMOV.F32 r1, 0.0\n.loop 10\nFADD.F32 r1, r1, 0.5\n.endloop\nSTG.F32 [c + r0], r1",
            {}, ("c",), {"c": (64,)},
        )
        np.testing.assert_array_equal(run.outputs["c"], np.full(64, 5.0, dtype=np.float32))

    def test_shared_memory_round_trip(self):
        run = _run(
            """
            .kernel k
            .buffer c
            .shared tile 32
            MOV r0, %tid
            MOV r1, %gid
            CVT.F32 r2, r1
            STS.F32 [tile + r0], r2
            BAR
            LDS.F32 r3, [tile + r0]
            STG.F32 [c + r1], r3
            """,
            {}, ("c",), {"c": (64,)},
        )
        np.testing.assert_array_equal(run.outputs["c"], np.arange(64, dtype=np.float32))

    def test_mufu_forms(self):
        a = np.array([1.0, 4.0] * 32, dtype=np.float32)
        run = _run(
            ".kernel k\n.buffer a\n.buffer c\nMOV r0, %gid\nLDG.F32 r1, [a + r0]\nMUFU.SQRT r2, r1\nSTG.F32 [c + r0], r2",
            {"a": a}, ("c",), {"c": (64,)},
        )
        np.testing.assert_allclose(run.outputs["c"], np.sqrt(a), rtol=1e-6)


class TestPredication:
    def test_guarded_write_keeps_old_lanes(self):
        run = _run(
            """
            .kernel k
            .buffer c
            MOV r0, %gid
            MOV.S32 r1, 7
            SETP.LT.S32 p0, r0, 10
            @p0 MOV.S32 r1, 99
            STG.S32 [c + r0], r1
            """,
            {}, ("c",), {"c": (64,)}, dtypes={"c": DType.INT32},
        )
        expected = np.where(np.arange(64) < 10, 99, 7).astype(np.int32)
        np.testing.assert_array_equal(run.outputs["c"], expected)

    def test_guarded_store(self):
        run = _run(
            """
            .kernel k
            .buffer c
            MOV r0, %gid
            SETP.GE.S32 p0, r0, 32
            @p0 STG.S32 [c + r0], r0
            """,
            {}, ("c",), {"c": (64,)}, dtypes={"c": DType.INT32},
        )
        out = run.outputs["c"]
        assert (out[:32] == 0).all()
        np.testing.assert_array_equal(out[32:], np.arange(32, 64, dtype=np.int32))

    def test_sel(self):
        run = _run(
            """
            .kernel k
            .buffer c
            MOV r0, %gid
            SETP.EQ.S32 p0, r0, 0
            CVT.F32 r1, r0
            SEL.F32 r2, p0, 1.0, r1
            STG.F32 [c + r0], r2
            """,
            {}, ("c",), {"c": (64,)},
        )
        expected = np.arange(64, dtype=np.float32)
        expected[0] = 1.0
        np.testing.assert_array_equal(run.outputs["c"], expected)


class TestTracing:
    def test_instruction_classes_recorded(self):
        a = np.ones(64, dtype=np.float32)
        run = _run(
            ".kernel k\n.buffer a\n.buffer c\nMOV r0, %gid\nLDG.F32 r1, [a + r0]\nFFMA.F32 r2, r1, 2.0, 1.0\nSTG.F32 [c + r0], r2",
            {"a": a}, ("c",), {"c": (64,)},
        )
        assert run.trace.instances[OpClass.FFMA] == 64
        assert run.trace.instances[OpClass.LDG] == 64
        assert run.trace.instances[OpClass.STG] == 64

    def test_injectable(self):
        """Assembled kernels feed the same injection machinery."""
        from repro.sim.injection import FaultModel, InjectionMode, InjectionPlan, opclass_stream

        text = ".kernel k\n.buffer a\n.buffer c\nMOV r0, %gid\nLDG.F32 r1, [a + r0]\nFFMA.F32 r2, r1, 2.0, 1.0\nSTG.F32 [c + r0], r2"
        a = np.ones(64, dtype=np.float32)
        golden = _run(text, {"a": a}, ("c",), {"c": (64,)}).outputs["c"]
        kernel = SassKernel(assemble(text), {"a": a}, ("c",), {"c": (64,)})
        plan = InjectionPlan(
            mode=InjectionMode.OUTPUT_VALUE,
            stream=opclass_stream(OpClass.FFMA),
            target_index=5,
            fault_model=FaultModel.SINGLE_BIT,
            rng=np.random.default_rng(3),
        )
        run = run_kernel(KEPLER_K40C, kernel, LaunchConfig(2, 32), plan=plan)
        assert plan.fired
        assert (run.outputs["c"] != golden).sum() == 1


class TestBindingValidation:
    def test_unknown_input(self):
        with pytest.raises(ConfigurationError):
            SassKernel(assemble(".kernel k\n.buffer a\nNOP"), {"b": np.zeros(4, np.float32)}, ())

    def test_unknown_output(self):
        with pytest.raises(ConfigurationError):
            SassKernel(assemble(".kernel k\n.buffer a\nNOP"), {}, ("b",), {"a": (4,)})

    def test_buffer_without_data_or_shape(self):
        with pytest.raises(ConfigurationError):
            SassKernel(assemble(".kernel k\n.buffer a\nNOP"), {}, ())
