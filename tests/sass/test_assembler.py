"""SASS assembler: parsing, validation, diagnostics."""

import pytest

from repro.arch.dtypes import DType
from repro.common.errors import ConfigurationError
from repro.sass import AssemblerError, assemble
from repro.sass.program import OperandKind

MINIMAL = """
.kernel k
.buffer a
MOV     r0, %gid
LDG.F32 r1, [a + r0]
"""


class TestDirectives:
    def test_kernel_and_buffers(self):
        prog = assemble(MINIMAL)
        assert prog.name == "k"
        assert prog.buffers == ["a"]

    def test_shared_directive(self):
        prog = assemble(".kernel k\n.shared tile 128\nNOP")
        assert prog.shared == [("tile", 128)]

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n.register r0")

    def test_comments_and_blank_lines(self):
        prog = assemble("; header\n.kernel k ; name\n\nNOP ; idle\n")
        assert prog.static_instruction_count() == 1


class TestOperands:
    def test_memory_forms(self):
        prog = assemble(
            ".kernel k\n.buffer a\nMOV r0, %gid\nLDG.F32 r1, [a]\nLDG.F32 r2, [a + r0]\nLDG.F32 r3, [a + r0 + 4]"
        )
        loads = [i for i in prog.instructions if i.mnemonic == "LDG"]
        assert loads[0].sources[0].index_register is None
        assert loads[1].sources[0].index_register == "r0"
        assert loads[2].sources[0].index_offset == 4

    def test_immediates(self):
        prog = assemble(".kernel k\nMOV.F32 r0, -1.5e2\nMOV.S32 r1, 0x10")
        assert prog.instructions[0].sources[0].value == -150.0
        assert prog.instructions[1].sources[0].value == 16.0

    def test_bad_operand(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\nMOV r0, q7")

    def test_specials(self):
        prog = assemble(".kernel k\nMOV r0, %tid\nMOV r1, %bid")
        assert prog.instructions[0].sources[0].kind is OperandKind.SPECIAL


class TestOpcodes:
    def test_type_suffix(self):
        prog = assemble(".kernel k\nMOV.F64 r0, 1.0\nFADD.F64 r1, r0, r0")
        assert prog.instructions[1].dtype is DType.FP64

    def test_default_types(self):
        prog = assemble(".kernel k\nMOV r0, %gid\nIADD r1, r0, 1\nMOV.F32 r2, 0.0\nFADD r3, r2, 1.0")
        assert prog.instructions[1].dtype is DType.INT32
        assert prog.instructions[3].dtype is DType.FP32

    def test_modifier_required(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\nMOV r0, %gid\nLOP r1, r0, r0")

    def test_modifier_parsed(self):
        prog = assemble(".kernel k\nMOV r0, %gid\nLOP.XOR r1, r0, r0")
        assert prog.instructions[1].modifier == "XOR"

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\nFLOP r0, r0")

    def test_unknown_suffix(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\nMOV.F128 r0, 1.0")

    def test_setp_needs_predicate_dest(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\nMOV r0, %gid\nSETP.LT r1, r0, 5")

    def test_store_shape(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n.buffer a\nMOV r0, %gid\nSTG.S32 r0, [a + r0]")


class TestLoops:
    def test_nested_loops(self):
        prog = assemble(
            ".kernel k\nMOV.F32 r0, 0.0\n.loop 3\n.loop 2\nFADD.F32 r0, r0, 1.0\n.endloop\n.endloop"
        )
        outer = prog.instructions[1]
        assert outer.mnemonic == "LOOP" and outer.loop_count == 3
        assert outer.body[0].loop_count == 2
        # 3*(2*(1 body + 2 overhead) + 2 overhead) = 3*8
        assert prog.dynamic_instruction_estimate() == 1 + 3 * 8

    def test_unbalanced_endloop(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n.endloop")

    def test_unclosed_loop(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n.loop 2\nNOP")

    def test_bad_count(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n.loop many\nNOP\n.endloop")


class TestGuards:
    def test_guard_parsed(self):
        prog = assemble(".kernel k\nMOV r0, %gid\nSETP.LT.S32 p0, r0, 5\n@p0 MOV.S32 r1, 1")
        assert prog.instructions[2].guard == "p0"

    def test_bad_guard(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n@r0 NOP")

    def test_guard_without_instruction(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel k\n@p0")


class TestValidation:
    def test_read_before_write(self):
        with pytest.raises(ConfigurationError):
            assemble(".kernel k\nIADD r0, r1, 1")

    def test_undeclared_buffer(self):
        with pytest.raises(ConfigurationError):
            assemble(".kernel k\nMOV r0, %gid\nLDG.F32 r1, [ghost + r0]")

    def test_guard_before_setp(self):
        with pytest.raises(ConfigurationError):
            assemble(".kernel k\n@p0 NOP\nMOV r0, %gid")

    def test_predicate_read_before_setp(self):
        with pytest.raises(ConfigurationError):
            assemble(".kernel k\nMOV.F32 r0, 1.0\nSEL.F32 r1, p0, r0, r0")
