"""Disassembler round trip: assemble(listing(p)) reproduces p."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.devices import KEPLER_K40C
from repro.sass import SassKernel, assemble
from repro.sim import LaunchConfig, run_kernel

SAMPLES = [
    """
    .kernel a
    .buffer x
    .buffer y
    MOV r0, %gid
    LDG.F32 r1, [x + r0]
    FFMA.F32 r2, r1, 2.0, 1.0
    STG.F32 [y + r0], r2
    """,
    """
    .kernel b
    .buffer y
    .shared tile 64
    MOV r0, %tid
    MOV.S32 r1, 5
    SETP.LT.S32 p0, r0, 16
    @p0 IADD r1, r1, 1
    STS.S32 [tile + r0], r1
    BAR
    LDS.S32 r2, [tile + r0]
    STG.S32 [y + r0], r2
    """,
    """
    .kernel c
    .buffer y
    MOV r0, %gid
    MOV.F32 r1, 0.0
    .loop 4
    .loop 2
    FADD.F32 r1, r1, 0.5
    .endloop
    .endloop
    LOP.XOR r2, r0, 3
    SHF.L r2, r2, 1
    MUFU.SQRT r3, r1
    CVT.S32 r4, r3
    STG.S32 [y + r0], r4
    """,
]


def _strip_lines(program) -> list:
    """Instruction tuples ignoring source line numbers."""
    def walk(block):
        out = []
        for i in block:
            out.append((i.mnemonic, i.modifier, i.dtype, str(i.dest), tuple(map(str, i.sources)), i.guard, i.loop_count))
            out.extend(walk(i.body))
        return out

    return walk(program.instructions)


class TestRoundTrip:
    @pytest.mark.parametrize("text", SAMPLES)
    def test_reassembles_identically(self, text):
        original = assemble(text)
        round_trip = assemble(original.listing())
        assert _strip_lines(round_trip) == _strip_lines(original)
        assert round_trip.buffers == original.buffers
        assert round_trip.shared == original.shared

    @pytest.mark.parametrize("text", SAMPLES[:2])
    def test_round_trip_executes_identically(self, text):
        original = assemble(text)
        round_trip = assemble(original.listing())
        x = np.arange(64, dtype=np.float32)
        for program in (original, round_trip):
            inputs = {"x": x} if "x" in program.buffers else {}
            kernel = SassKernel(program, inputs, ("y",), {"y": (64,)},
                                dtypes={"y": _out_dtype(program)})
            run = run_kernel(KEPLER_K40C, kernel, LaunchConfig(2, 32))
            if program is original:
                expected = run.outputs["y"]
            else:
                np.testing.assert_array_equal(run.outputs["y"], expected)


def _out_dtype(program):
    from repro.arch.dtypes import DType

    for instr in program.instructions:
        if instr.mnemonic == "STG":
            return instr.dtype or DType.FP32
    return DType.FP32


class TestGeneratedPrograms:
    @given(
        consts=st.lists(st.integers(-100, 100), min_size=1, max_size=6),
        trip=st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_int_chain_round_trips(self, consts, trip):
        body = "\n".join(f"IADD r1, r1, {c}" for c in consts)
        text = (
            ".kernel g\n.buffer y\nMOV r0, %gid\nMOV.S32 r1, 0\n"
            f".loop {trip}\n{body}\n.endloop\n"
            "STG.S32 [y + r0], r1"
        )
        original = assemble(text)
        round_trip = assemble(original.listing())
        assert _strip_lines(round_trip) == _strip_lines(original)
        # and both compute trip * sum(consts)
        from repro.arch.dtypes import DType

        kernel = SassKernel(round_trip, {}, ("y",), {"y": (64,)}, dtypes={"y": DType.INT32})
        run = run_kernel(KEPLER_K40C, kernel, LaunchConfig(2, 32))
        assert int(run.outputs["y"][0]) == trip * sum(consts)
