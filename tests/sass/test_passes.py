"""SASS passes: DCE, redundant-MOV insertion, unrolling — and the paper's
optimization-raises-AVF claim measured at the SASS level."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.dtypes import DType
from repro.common.errors import ConfigurationError
from repro.sass import SassKernel, assemble
from repro.sass.passes import eliminate_dead_code, insert_redundant_movs, unroll_loops
from repro.sim import LaunchConfig, run_kernel

PROGRAM_WITH_DEAD_CODE = """
.kernel k
.buffer a
.buffer c
MOV      r0, %gid
LDG.F32  r1, [a + r0]
FMUL.F32 r2, r1, 2.0      ; live
FMUL.F32 r3, r1, 3.0      ; dead
FADD.F32 r4, r3, 1.0      ; dead chain (only r3's consumer)
STG.F32  [c + r0], r2
"""


def _outputs(program, a):
    kernel = SassKernel(program, {"a": a}, ("c",), {"c": a.shape})
    return run_kernel(KEPLER_K40C, kernel, LaunchConfig(2, 32))


class TestDce:
    def test_removes_dead_chain(self):
        prog = assemble(PROGRAM_WITH_DEAD_CODE)
        opt = eliminate_dead_code(prog)
        assert opt.static_instruction_count() == prog.static_instruction_count() - 2

    def test_semantics_preserved(self):
        a = np.random.default_rng(0).uniform(-2, 2, 64).astype(np.float32)
        prog = assemble(PROGRAM_WITH_DEAD_CODE)
        raw = _outputs(prog, a)
        opt = _outputs(eliminate_dead_code(prog), a)
        np.testing.assert_array_equal(raw.outputs["c"], opt.outputs["c"])

    def test_keeps_address_registers(self):
        prog = eliminate_dead_code(assemble(PROGRAM_WITH_DEAD_CODE))
        assert any(i.mnemonic == "MOV" for i in prog.instructions)  # r0 feeds [c + r0]

    def test_keeps_stores_and_barriers(self):
        prog = assemble(".kernel k\n.buffer c\nMOV r0, %gid\nBAR\nSTG.S32 [c + r0], r0")
        assert eliminate_dead_code(prog).static_instruction_count() == 3

    def test_loop_written_registers_survive(self):
        text = """
        .kernel k
        .buffer c
        MOV r0, %gid
        MOV.F32 r1, 0.0
        .loop 4
        FADD.F32 r1, r1, 1.0
        .endloop
        STG.F32 [c + r0], r1
        """
        prog = assemble(text)
        opt = eliminate_dead_code(prog)
        assert opt.static_instruction_count() == prog.static_instruction_count()

    def test_fixed_point_kills_long_chains(self):
        text = ".kernel k\nMOV.F32 r0, 1.0\n" + "\n".join(
            f"FADD.F32 r{i + 1}, r{i}, 1.0" for i in range(6)
        )
        opt = eliminate_dead_code(assemble(text))
        assert opt.static_instruction_count() == 0


class TestRedundantMovs:
    def test_adds_scratch_copies(self):
        prog = assemble(PROGRAM_WITH_DEAD_CODE)
        deopt = insert_redundant_movs(prog, period=1)
        assert deopt.static_instruction_count() > prog.static_instruction_count()

    def test_semantics_preserved(self):
        a = np.random.default_rng(1).uniform(-2, 2, 64).astype(np.float32)
        prog = assemble(PROGRAM_WITH_DEAD_CODE)
        raw = _outputs(prog, a)
        deopt = _outputs(insert_redundant_movs(prog, period=1), a)
        np.testing.assert_array_equal(raw.outputs["c"], deopt.outputs["c"])

    def test_bad_period(self):
        with pytest.raises(ConfigurationError):
            insert_redundant_movs(assemble(".kernel k\nNOP"), period=0)

    def test_inverse_of_dce(self):
        """DCE removes exactly what the de-optimizer added."""
        prog = eliminate_dead_code(assemble(PROGRAM_WITH_DEAD_CODE))
        round_trip = eliminate_dead_code(insert_redundant_movs(prog, period=1))
        assert round_trip.static_instruction_count() == prog.static_instruction_count()


class TestUnroll:
    def test_divisible_loop_unrolled(self):
        text = ".kernel k\nMOV.F32 r0, 0.0\n.loop 8\nFADD.F32 r0, r0, 1.0\n.endloop"
        prog = unroll_loops(assemble(text), factor=4)
        loop = prog.instructions[1]
        assert loop.loop_count == 2
        assert len(loop.body) == 4

    def test_indivisible_loop_untouched(self):
        text = ".kernel k\nMOV.F32 r0, 0.0\n.loop 7\nFADD.F32 r0, r0, 1.0\n.endloop"
        prog = unroll_loops(assemble(text), factor=4)
        assert prog.instructions[1].loop_count == 7

    def test_semantics_preserved(self):
        text = """
        .kernel k
        .buffer c
        MOV r0, %gid
        MOV.F32 r1, 0.0
        .loop 8
        FADD.F32 r1, r1, 0.25
        .endloop
        STG.F32 [c + r0], r1
        """
        a = np.zeros(64, dtype=np.float32)
        raw = _outputs(assemble(text.replace(".buffer c", ".buffer a\n.buffer c")), a)
        # simpler: compare unrolled against original on the same program
        prog = assemble(text.replace(".buffer c", ".buffer a\n.buffer c"))
        opt = _outputs(unroll_loops(prog, 4), a)
        np.testing.assert_array_equal(raw.outputs["c"], opt.outputs["c"])

    def test_reduces_loop_overhead_share(self):
        text = ".kernel k\n.buffer c\nMOV r0, %gid\nMOV.F32 r1, 0.0\n.loop 8\nFADD.F32 r1, r1, 1.0\n.endloop\nSTG.F32 [c + r0], r1"
        prog = assemble(text)
        a = np.zeros(64, dtype=np.float32)
        kernel_raw = SassKernel(prog, {}, ("c",), {"c": (64,)})
        kernel_unrolled = SassKernel(unroll_loops(prog, 4), {}, ("c",), {"c": (64,)})
        from repro.arch.isa import OpClass

        raw = run_kernel(KEPLER_K40C, kernel_raw, LaunchConfig(2, 32))
        opt = run_kernel(KEPLER_K40C, kernel_unrolled, LaunchConfig(2, 32))
        assert opt.trace.instances[OpClass.BRA] < raw.trace.instances[OpClass.BRA]


class TestOptimizationRaisesAvf:
    def test_paper_claim_at_sass_level(self):
        """§VI: 'a more optimized code increases the AVF' — measured here
        with everything but the pass held fixed."""
        from repro.faultsim.campaign import CampaignRunner
        from repro.faultsim.frameworks import NvBitFi
        from repro.faultsim.outcomes import Outcome
        from repro.sim import LaunchConfig
        from repro.workloads.base import Workload, WorkloadSpec

        text = """
        .kernel k
        .buffer a
        .buffer c
        MOV      r0, %gid
        LDG.F32  r1, [a + r0]
        MOV.F32  r2, 0.0
        .loop 8
        FFMA.F32 r2, r1, 0.5, r2
        .endloop
        STG.F32  [c + r0], r2
        """
        base = assemble(text)
        variants = {
            "optimized": eliminate_dead_code(base),
            "deoptimized": insert_redundant_movs(base, period=1),
        }
        a = np.random.default_rng(2).uniform(-2, 2, 256).astype(np.float32)
        avf = {}
        for label, program in variants.items():
            sass = SassKernel(program, {"a": a}, ("c",), {"c": (256,)})

            class Wrap(Workload):
                def _generate_inputs(self, rng):
                    pass

                def sim_launch(self):
                    return LaunchConfig(4, 64)

                def kernel(self, ctx, _s=sass):
                    return _s(ctx)

            w = Wrap(WorkloadSpec(name=f"OPT-{label}", base="sass", dtype=DType.FP32))
            runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3)
            avf[label] = runner.run(w, 150).avf(Outcome.SDC)
        assert avf["optimized"] > avf["deoptimized"]
