"""Compiled SASS dispatch (fast path) ≡ tree-walking interpreter.

``SassKernel.__call__`` picks one of two engines at run time: the closure
compiler in :mod:`repro.sass.compiler` (fast path on, the default) or the
tree-walking reference in :mod:`repro.sass.interpreter`.  These tests pin
them bit-identical — outputs, traces, per-mnemonic telemetry, and fault
behavior — and check the compile-once / cache-on-program contract.
"""

import pickle

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.sass import SassKernel, assemble
from repro.sass.compiler import compiled_for
from repro.sim import LaunchConfig, run_kernel
from repro.sim.fastpath import fast_path
from repro.sim.injection import FaultModel, InjectionMode, InjectionPlan, opclass_stream
from repro.telemetry import capture

#: one program exercising every interpreter feature class: specials,
#: loads/stores, loops, shared memory + barriers, predication (guarded
#: register and store writes), SEL, CVT, MUFU, logic/shift/minmax, FFMA
_KITCHEN_SINK = """
.kernel sink
.buffer a
.buffer c
.shared tile 32
MOV        r0, %gid
MOV        r9, %tid
LDG.F32    r1, [a + r0]
STS.F32    [tile + r9], r1
BAR
LDS.F32    r2, [tile + r9]
FMUL.F32   r3, r2, 2.0
FFMA.F32   r3, r3, 1.5, r1
.loop 4
FADD.F32   r3, r3, 0.25
.endloop
SETP.LT.F32 p0, r3, 8.0
@p0 FADD.F32 r3, r3, 100.0
SEL.F32    r4, p0, r3, r1
MUFU.SQRT  r5, r1
FADD.F32   r4, r4, r5
CVT.S32    r6, r0
LOP.XOR    r6, r6, 5
SHF.L      r6, r6, 1
IMNMX.MIN  r6, r6, 90
CVT.F32    r7, r6
FADD.F32   r4, r4, r7
STG.F32    [c + r0], r4
SETP.GE.S32 p1, r0, 48
@p1 STG.F32 [c + r0], r1
"""

_LAUNCH = LaunchConfig(2, 32)


def _kernel(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 4.0, size=64).astype(np.float32)
    return SassKernel(assemble(_KITCHEN_SINK), {"a": a}, ("c",), {"c": (64,)})


def _observe(enabled, plan=None, seed=0):
    with fast_path(enabled), capture() as registry:
        run = run_kernel(KEPLER_K40C, _kernel(seed), _LAUNCH, plan=plan)
    snapshot = registry.snapshot()
    return run, snapshot["counters"]


class TestEngineEquivalence:
    def test_outputs_trace_and_telemetry_match(self):
        slow_run, slow_counters = _observe(False)
        fast_run, fast_counters = _observe(True)
        np.testing.assert_array_equal(slow_run.outputs["c"], fast_run.outputs["c"])
        assert dict(slow_run.trace.instances) == dict(fast_run.trace.instances)
        assert dict(slow_run.trace.issues) == dict(fast_run.trace.issues)
        assert slow_run.trace.global_bytes == fast_run.trace.global_bytes
        assert slow_run.trace.shared_bytes == fast_run.trace.shared_bytes
        assert slow_run.trace.barriers == fast_run.trace.barriers
        assert int(slow_run.ticks) == int(fast_run.ticks)
        # per-mnemonic sass.instructions.* retirement counts included
        assert slow_counters == fast_counters

    def test_multiple_seeds(self):
        for seed in (1, 2, 3):
            slow_run, _ = _observe(False, seed=seed)
            fast_run, _ = _observe(True, seed=seed)
            np.testing.assert_array_equal(
                slow_run.outputs["c"], fast_run.outputs["c"]
            )


class TestInjectionEquivalence:
    @pytest.mark.parametrize("opclass", [OpClass.FFMA, OpClass.LDG, OpClass.FADD])
    @pytest.mark.parametrize("target", [0, 3, 17])
    def test_injected_runs_match(self, opclass, target):
        """The same armed fault fires at the same site with the same
        corruption on both engines (shared RNG stream, same offer order)."""

        def observe(enabled):
            plan = InjectionPlan(
                mode=InjectionMode.OUTPUT_VALUE,
                stream=opclass_stream(opclass),
                target_index=target,
                fault_model=FaultModel.SINGLE_BIT,
                rng=np.random.default_rng(100 * target + 7),
            )
            run, _ = _observe(enabled, plan=plan)
            return run.outputs["c"], plan.fired

        slow_out, slow_fired = observe(False)
        fast_out, fast_fired = observe(True)
        assert slow_fired == fast_fired
        np.testing.assert_array_equal(slow_out, fast_out)

    def test_injection_perturbs_output(self):
        """Sanity: the sweep above compares *faulty* runs, not two goldens."""
        golden, _ = _observe(True)
        plan = InjectionPlan(
            mode=InjectionMode.OUTPUT_VALUE,
            stream=opclass_stream(OpClass.FFMA),
            target_index=3,
            fault_model=FaultModel.SINGLE_BIT,
            rng=np.random.default_rng(307),
        )
        faulty, _ = _observe(True, plan=plan)
        assert plan.fired
        assert (faulty.outputs["c"] != golden.outputs["c"]).any()


class TestCompileCaching:
    def test_compiled_once_per_program(self):
        program = assemble(_KITCHEN_SINK)
        assert compiled_for(program) is compiled_for(program)
        assert getattr(program, "_compiled", None) is not None

    def test_pickle_drops_compiled_cache(self):
        """Compiled closures bind module state and must not travel to
        worker processes; the clone recompiles on first use."""
        program = assemble(_KITCHEN_SINK)
        compiled_for(program)
        clone = pickle.loads(pickle.dumps(program))
        assert getattr(clone, "_compiled", None) is None
        # and the recompiled clone still runs identically
        rng = np.random.default_rng(0)
        a = rng.uniform(0.5, 4.0, size=64).astype(np.float32)
        with fast_path(True):
            original = run_kernel(
                KEPLER_K40C, SassKernel(program, {"a": a}, ("c",), {"c": (64,)}), _LAUNCH
            )
            recompiled = run_kernel(
                KEPLER_K40C, SassKernel(clone, {"a": a}, ("c",), {"c": (64,)}), _LAUNCH
            )
        np.testing.assert_array_equal(
            original.outputs["c"], recompiled.outputs["c"]
        )
