"""Examples: importable, documented, and the cheapest one runs end to end."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    """Importing must not execute the experiment (main-guard discipline)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    assert module.__doc__, f"{path.name} lacks a module docstring"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_usage_line(path):
    text = path.read_text()
    assert "python examples/" in text, f"{path.name} docstring lacks a usage line"


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "beam experiment" in result.stdout
    assert "AVF sdc" in result.stdout
