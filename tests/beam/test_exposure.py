"""Exposure profiles: reference-scale resource accounting."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.ecc import EccMode
from repro.arch.isa import OpClass, unit_for, unit_throughput
from repro.arch.units import UnitKind
from repro.beam.cross_sections import catalog_for
from repro.beam.engine import BeamEngine
from repro.beam.exposure import compute_exposure
from repro.microbench.registry import get_microbench
from repro.workloads.registry import get_workload


def _profile(arch, code, device, microbench=False, ecc=EccMode.ON):
    wl = get_microbench(arch, code) if microbench else get_workload(arch, code)
    catalog = catalog_for(device)
    engine = BeamEngine(device, wl, catalog, ecc)
    return compute_exposure(device, wl, engine.golden, catalog), wl, catalog


class TestStructure:
    def test_all_sections_positive(self):
        profile, _, _ = _profile("kepler", "FMXM", KEPLER_K40C)
        assert all(v > 0 for v in profile.op_sigma_eff.values())
        assert all(v > 0 for v in profile.storage_sigma_eff.values())
        assert all(v > 0 for v in profile.hidden_sigma_eff.values())
        assert profile.total_sigma == pytest.approx(sum(profile.as_rates().values()))

    def test_exec_seconds_positive(self):
        profile, _, _ = _profile("kepler", "CCL", KEPLER_K40C)
        assert profile.exec_seconds > 0

    def test_flat_keys_parse(self):
        profile, _, _ = _profile("kepler", "FMXM", KEPLER_K40C)
        for key in profile.as_rates():
            kind, _, name = key.partition(":")
            assert kind in ("op", "mem", "hidden")
            assert name


class TestCaps:
    def test_inflight_capped_by_pipeline_capacity(self):
        """No code can keep more lane-ops in flight than the pipelines of
        the physically present units can hold."""
        profile, wl, catalog = _profile("kepler", "FMXM", KEPLER_K40C)
        for op, sigma_eff in profile.op_sigma_eff.items():
            inflight = sigma_eff / catalog.sigma_for_op(op)
            unit = unit_for(op, "kepler")
            residency = 32.0 if op.is_memory else 8.0
            capacity = unit_throughput(unit, "kepler") * KEPLER_K40C.sm_count * residency
            assert inflight <= capacity + 1e-6

    def test_rf_bits_capped_by_device(self):
        profile, _, catalog = _profile("volta", "DLAVA", VOLTA_V100)
        rf_bits = profile.storage_sigma_eff[UnitKind.REGISTER_FILE] / catalog.bit_sigma[UnitKind.REGISTER_FILE]
        assert rf_bits <= VOLTA_V100.storage_bits(UnitKind.REGISTER_FILE)

    def test_rf_microbench_fills_register_file(self):
        """The RF benchmark is designed to expose ~the whole RF (§V-A)."""
        profile, wl, catalog = _profile("kepler", "RF", KEPLER_K40C, microbench=True)
        rf_bits = profile.storage_sigma_eff[UnitKind.REGISTER_FILE] / catalog.bit_sigma[UnitKind.REGISTER_FILE]
        # pattern registers per thread × resident threads
        assert rf_bits == pytest.approx(wl.beam_rf_registers * 3840 * 32, rel=0.1)


class TestParallelismSensitivity:
    def test_mxm_keeps_more_ops_in_flight_than_nw(self):
        """§III-C / §IV-B: parallel, saturated codes keep far more
        operations simultaneously in flight than wavefront codes (the
        σ-free utilization claim; NW's higher per-op INT sensitivity is a
        separate, orthogonal effect)."""
        mxm, _, catalog = _profile("kepler", "FMXM", KEPLER_K40C)
        nw, _, _ = _profile("kepler", "NW", KEPLER_K40C)

        def total_inflight(profile):
            return sum(
                v / catalog.sigma_for_op(op) for op, v in profile.op_sigma_eff.items()
            )

        assert total_inflight(mxm) > 2.0 * total_inflight(nw)

    def test_host_chatty_code_exposes_host_interface_more(self):
        """BFS reads back a flag every level; MxM syncs once."""
        bfs, _, _ = _profile("kepler", "BFS", KEPLER_K40C)
        mxm, _, _ = _profile("kepler", "FMXM", KEPLER_K40C)
        assert (
            bfs.hidden_sigma_eff[UnitKind.HOST_INTERFACE]
            > mxm.hidden_sigma_eff[UnitKind.HOST_INTERFACE]
        )

    def test_tensor_code_exposes_tensor_ops(self):
        profile, _, _ = _profile("volta", "HGEMM-MMA", VOLTA_V100)
        assert OpClass.HMMA in profile.op_sigma_eff
        assert profile.op_sigma_eff[OpClass.HMMA] > profile.op_sigma_eff.get(OpClass.IADD, 0.0)
