"""Cross-section catalog: the calibrated ratios the paper publishes."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpClass
from repro.arch.units import UnitKind
from repro.beam.cross_sections import (
    KEPLER_CATALOG,
    VOLTA_CATALOG,
    HiddenOutcomeModel,
    catalog_for,
)
from repro.common.errors import ConfigurationError


class TestKeplerRatios:
    def test_int_about_4x_fp32(self):
        """Kepler integers run on the FP32 cores inefficiently (§V-B)."""
        ratio = KEPLER_CATALOG.op_sigma[OpClass.IADD] / KEPLER_CATALOG.op_sigma[OpClass.FADD]
        assert 3.0 <= ratio <= 5.0

    def test_imul_above_iadd(self):
        """IMUL ≈ 30% above IADD; IMAD above both (§V-B)."""
        sigma = KEPLER_CATALOG.op_sigma
        assert 1.2 <= sigma[OpClass.IMUL] / sigma[OpClass.IADD] <= 1.45
        assert sigma[OpClass.IMAD] > sigma[OpClass.IMUL]

    def test_complexity_ordering_fp32(self):
        sigma = KEPLER_CATALOG.op_sigma
        assert sigma[OpClass.FADD] < sigma[OpClass.FMUL] < sigma[OpClass.FFMA]

    def test_no_tensor_cores(self):
        assert KEPLER_CATALOG.op_sigma[OpClass.HMMA] == 0.0


class TestVoltaRatios:
    def test_precision_monotone(self):
        """Higher precision = larger datapath = higher sensitivity (§V-B)."""
        sigma = VOLTA_CATALOG.op_sigma
        for a, b, c in [
            (OpClass.HADD, OpClass.FADD, OpClass.DADD),
            (OpClass.HMUL, OpClass.FMUL, OpClass.DMUL),
            (OpClass.HFMA, OpClass.FFMA, OpClass.DFMA),
        ]:
            assert sigma[a] < sigma[b] < sigma[c]

    def test_int_comparable_to_fp32(self):
        """Dedicated INT32 cores: no Kepler-style 4× penalty."""
        sigma = VOLTA_CATALOG.op_sigma
        assert 0.5 <= sigma[OpClass.IADD] / sigma[OpClass.FADD] <= 2.0

    def test_mma_dwarfs_scalars(self):
        sigma = VOLTA_CATALOG.op_sigma
        assert sigma[OpClass.HMMA] > 10 * sigma[OpClass.DFMA]
        assert sigma[OpClass.HMMA] == sigma[OpClass.FMMA]


class TestStorage:
    def test_kepler_rf_an_order_above_volta(self):
        """28 nm planar vs 16 nm FinFET (§V-B, ref [29])."""
        ratio = (
            KEPLER_CATALOG.bit_sigma[UnitKind.REGISTER_FILE]
            / VOLTA_CATALOG.bit_sigma[UnitKind.REGISTER_FILE]
        )
        assert 5.0 <= ratio <= 20.0

    def test_all_storage_sigma_positive(self):
        for catalog in (KEPLER_CATALOG, VOLTA_CATALOG):
            for unit in (UnitKind.REGISTER_FILE, UnitKind.SHARED_MEMORY, UnitKind.L2_CACHE, UnitKind.DEVICE_MEMORY):
                assert catalog.bit_sigma[unit] > 0


class TestHidden:
    def test_all_hidden_units_covered(self):
        for catalog in (KEPLER_CATALOG, VOLTA_CATALOG):
            for unit in UnitKind:
                if unit.is_hidden:
                    assert unit in catalog.hidden_sigma
                    assert unit in catalog.hidden_outcomes

    def test_hidden_faults_mostly_due(self):
        """The paper's §VII-B premise: hidden-resource faults crash."""
        for model in KEPLER_CATALOG.hidden_outcomes.values():
            assert model.p_due > model.p_sdc
            assert model.p_due >= 0.5

    def test_outcome_model_validates(self):
        with pytest.raises(ConfigurationError):
            HiddenOutcomeModel(p_due=0.9, p_sdc=0.2)
        model = HiddenOutcomeModel(p_due=0.6, p_sdc=0.1)
        assert model.p_masked == pytest.approx(0.3)


class TestLookup:
    def test_catalog_for(self):
        assert catalog_for(KEPLER_K40C) is KEPLER_CATALOG
        assert catalog_for(VOLTA_V100) is VOLTA_CATALOG

    def test_sigma_for_op_missing(self):
        with pytest.raises(ConfigurationError):
            # synthesise a catalog without the op
            from repro.beam.cross_sections import CrossSectionCatalog

            empty = CrossSectionCatalog(
                architecture="kepler", op_sigma={}, bit_sigma={}, hidden_sigma={}, hidden_outcomes={}
            )
            empty.sigma_for_op(OpClass.FADD)

    def test_address_fraction_favors_due(self):
        assert KEPLER_CATALOG.lsu_address_fraction > 0.5
