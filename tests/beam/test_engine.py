"""Beam engine: per-resource outcome evaluation."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.arch.isa import OpClass
from repro.arch.units import UnitKind
from repro.beam.cross_sections import KEPLER_CATALOG
from repro.beam.engine import BeamEngine
from repro.common.errors import ConfigurationError
from repro.faultsim.outcomes import Outcome
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def engine_on():
    return BeamEngine(KEPLER_K40C, get_workload("kepler", "FMXM", seed=1), KEPLER_CATALOG, EccMode.ON)


@pytest.fixture(scope="module")
def engine_off():
    return BeamEngine(KEPLER_K40C, get_workload("kepler", "FMXM", seed=1), KEPLER_CATALOG, EccMode.OFF)


class TestOpFaults:
    def test_ffma_faults_often_sdc(self, engine_on):
        rng = np.random.default_rng(0)
        outcomes = [engine_on.evaluate_op_fault(OpClass.FFMA, rng) for _ in range(30)]
        assert outcomes.count(Outcome.SDC) > 5

    def test_never_executed_op_rejected(self, engine_on):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            engine_on.evaluate_op_fault(OpClass.HMMA, rng)

    def test_lsu_faults_mix_addresses_and_values(self, engine_on):
        rng = np.random.default_rng(2)
        outcomes = [engine_on.evaluate_op_fault(OpClass.LDG, rng) for _ in range(40)]
        assert Outcome.DUE in outcomes  # wild/illegal addresses


class TestStorageFaults:
    def test_ecc_on_short_circuits(self, engine_on):
        rng = np.random.default_rng(3)
        outcomes = [engine_on.evaluate_storage_fault(UnitKind.REGISTER_FILE, rng) for _ in range(300)]
        due = outcomes.count(Outcome.DUE)
        assert outcomes.count(Outcome.SDC) == 0       # corrected, never delivered
        assert 0 < due < 30                            # ~2% MBU detections

    def test_ecc_off_mechanistic(self, engine_off):
        rng = np.random.default_rng(4)
        outcomes = [engine_off.evaluate_storage_fault(UnitKind.DEVICE_MEMORY, rng) for _ in range(25)]
        assert Outcome.SDC in outcomes  # input corruption reaches C

    def test_non_storage_rejected(self, engine_on):
        with pytest.raises(ConfigurationError):
            engine_on.evaluate_storage_fault(UnitKind.FP32, np.random.default_rng(0))


class TestHiddenFaults:
    def test_mixture_statistics(self, engine_on):
        rng = np.random.default_rng(5)
        outcomes = [engine_on.evaluate_hidden_fault(UnitKind.SCHEDULER, rng) for _ in range(1000)]
        model = KEPLER_CATALOG.hidden_outcomes[UnitKind.SCHEDULER]
        assert outcomes.count(Outcome.DUE) / 1000 == pytest.approx(model.p_due, abs=0.05)
        assert outcomes.count(Outcome.SDC) / 1000 == pytest.approx(model.p_sdc, abs=0.03)

    def test_non_hidden_rejected(self, engine_on):
        with pytest.raises(ConfigurationError):
            engine_on.evaluate_hidden_fault(UnitKind.FP32, np.random.default_rng(0))


class TestDispatch:
    def test_resource_keys(self, engine_on):
        rng = np.random.default_rng(6)
        assert engine_on.evaluate("op:FFMA", rng) in Outcome
        assert engine_on.evaluate("mem:register_file", rng) in Outcome
        assert engine_on.evaluate("hidden:scheduler", rng) in Outcome

    def test_unknown_key(self, engine_on):
        with pytest.raises(ConfigurationError):
            engine_on.evaluate("bogus:thing", np.random.default_rng(0))

    def test_golden_cached(self, engine_on):
        assert engine_on.golden is engine_on.golden
