"""Beam experiment protocol: fluence accounting, modes, FIT estimates."""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.common.errors import ConfigurationError
from repro.faultsim.outcomes import Outcome
from repro.microbench.registry import get_microbench
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def experiment():
    return BeamExperiment(KEPLER_K40C, seed=0)


class TestExpectedMode:
    def test_deterministic(self, experiment):
        wl = get_microbench("kepler", "FADD", seed=0)
        a = experiment.run(wl, beam_hours=72, mode="expected", max_fault_evals=60)
        b = experiment.run(
            get_microbench("kepler", "FADD", seed=0),
            beam_hours=72, mode="expected", max_fault_evals=60,
        )
        assert a.fit_sdc.value == pytest.approx(b.fit_sdc.value)
        assert a.fit_due.value == pytest.approx(b.fit_due.value)

    def test_fit_independent_of_beam_hours(self, experiment):
        """FIT = errors/fluence must not depend on exposure length (§III-C)."""
        wl = get_microbench("kepler", "IADD", seed=0)
        short = experiment.run(wl, beam_hours=10, mode="expected", max_fault_evals=60)
        long = experiment.run(wl, beam_hours=100, mode="expected", max_fault_evals=60)
        assert short.fit_sdc.value == pytest.approx(long.fit_sdc.value, rel=1e-6)

    def test_breakdown_normalized(self, experiment):
        wl = get_workload("kepler", "FMXM", seed=0)
        result = experiment.run(wl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
        shares = result.breakdown(Outcome.SDC)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_memory_dominates_ecc_off(self, experiment):
        """§VII: with ECC disabled the memory contribution dominates."""
        wl = get_workload("kepler", "FMXM", seed=0)
        result = experiment.run(wl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
        shares = result.breakdown(Outcome.SDC)
        mem_share = sum(v for k, v in shares.items() if k.startswith("mem:"))
        assert mem_share > 0.5

    def test_ecc_cuts_sdc(self, experiment):
        wl = get_workload("kepler", "FHOTSPOT", seed=0)
        off = experiment.run(wl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
        on = experiment.run(wl, ecc=EccMode.ON, beam_hours=72, mode="expected", max_fault_evals=80)
        assert off.fit_sdc.value > 2.0 * on.fit_sdc.value


class TestMonteCarloMode:
    def test_counts_within_interval(self, experiment):
        wl = get_workload("kepler", "FMXM", seed=0)
        result = experiment.run(wl, ecc=EccMode.ON, beam_hours=72, mode="montecarlo", max_fault_evals=120)
        assert result.fit_sdc.lower <= result.fit_sdc.value <= result.fit_sdc.upper
        assert result.errors >= 0

    def test_mc_tracks_expected(self, experiment):
        wl = get_workload("kepler", "FMXM", seed=0)
        expected = experiment.run(wl, ecc=EccMode.ON, beam_hours=72, mode="expected", max_fault_evals=100)
        mc = experiment.run(wl, ecc=EccMode.ON, beam_hours=72, mode="montecarlo", max_fault_evals=150)
        # same order of magnitude
        assert mc.fit_sdc.value == pytest.approx(expected.fit_sdc.value, rel=2.0)

    def test_single_fault_regime_reported(self, experiment):
        wl = get_microbench("kepler", "FADD", seed=0)
        result = experiment.run(wl, beam_hours=72, mode="montecarlo", max_fault_evals=60)
        assert isinstance(result.single_fault_regime, bool)


class TestValidation:
    def test_bad_hours(self, experiment):
        with pytest.raises(ConfigurationError):
            experiment.run(get_microbench("kepler", "FADD"), beam_hours=0)

    def test_bad_mode(self, experiment):
        with pytest.raises(ConfigurationError):
            experiment.run(get_microbench("kepler", "FADD"), mode="exact")

    def test_result_metadata(self, experiment):
        wl = get_microbench("kepler", "LDST", seed=0)
        result = experiment.run(wl, beam_hours=24, mode="expected", max_fault_evals=60)
        assert result.workload == "LDST"
        assert result.device == KEPLER_K40C.name
        assert result.beam_hours == 24
        assert result.fluence_n_cm2 > 0
