"""Facilities and the single-fault-regime discipline."""

import pytest

from repro.beam.facility import CHIPIR, LANSCE, Facility, single_fault_regime_ok


class TestFacility:
    def test_chipir_flux(self):
        assert CHIPIR.flux_n_cm2_s == pytest.approx(3.5e6)

    def test_lansce_exists(self):
        assert LANSCE.flux_n_cm2_s > 0

    def test_acceleration_about_8_orders(self):
        assert 1e8 < CHIPIR.acceleration_factor < 1e10

    def test_fluence(self):
        f = CHIPIR.fluence(2.0)
        assert f.n_per_cm2 == pytest.approx(2 * 3600 * 3.5e6)

    def test_invalid_flux(self):
        with pytest.raises(ValueError):
            Facility(name="broken", flux_n_cm2_s=0.0)


class TestRegime:
    def test_below_threshold_ok(self):
        assert single_fault_regime_ok(errors=1, executions=2000)

    def test_above_threshold_fails(self):
        assert not single_fault_regime_ok(errors=5, executions=1000)

    def test_boundary(self):
        assert single_fault_regime_ok(errors=1, executions=1000)

    def test_zero_executions_rejected(self):
        with pytest.raises(ValueError):
            single_fault_regime_ok(errors=0, executions=0)
