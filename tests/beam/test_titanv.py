"""Titan V: the ECC-incapable Volta (the paper's second Volta board)."""

import pytest

from repro.arch.devices import VOLTA_TITAN_V, VOLTA_V100
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.common.errors import ConfigurationError
from repro.microbench.registry import get_microbench


class TestTitanV:
    def test_ecc_on_rejected(self):
        exp = BeamExperiment(VOLTA_TITAN_V)
        with pytest.raises(ConfigurationError):
            exp.run(get_microbench("volta", "FADD"), ecc=EccMode.ON, mode="expected")

    def test_ecc_off_runs(self):
        exp = BeamExperiment(VOLTA_TITAN_V)
        result = exp.run(
            get_microbench("volta", "FADD"),
            ecc=EccMode.OFF,
            mode="expected",
            max_fault_evals=40,
        )
        assert result.fit_sdc.value > 0

    def test_shares_volta_catalog(self):
        from repro.beam.cross_sections import VOLTA_CATALOG, catalog_for

        assert catalog_for(VOLTA_TITAN_V) is VOLTA_CATALOG

    def test_same_sm_configuration_as_v100(self):
        assert VOLTA_TITAN_V.units_per_sm == VOLTA_V100.units_per_sm
        assert VOLTA_TITAN_V.sm_count == VOLTA_V100.sm_count
