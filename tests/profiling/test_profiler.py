"""Profiler: Table I metrics, Figure 1 mixes, caching, rendering."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpCategory
from repro.common.errors import ConfigurationError
from repro.profiling.metrics import KernelMetrics
from repro.profiling.profiler import Profiler, metrics_from_trace, profile_workload
from repro.profiling.report import instruction_mix_table, metrics_table
from repro.sim.trace import ExecutionTrace
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def profiler():
    return Profiler(KEPLER_K40C)


class TestProfiler:
    def test_golden_cached_per_backend(self, profiler):
        w = get_workload("kepler", "FMXM", seed=0)
        assert profiler.golden_run(w) is profiler.golden_run(w)
        assert profiler.golden_run(w) is not profiler.golden_run(w, backend="cuda7")

    def test_metrics_fields(self, profiler):
        m = profiler.metrics(get_workload("kepler", "FMXM", seed=0))
        assert m.code == "FMXM"
        assert m.device == KEPLER_K40C.name
        assert m.ipc > 0
        assert 0 < m.achieved_occupancy <= 1.0
        assert m.registers_per_thread == 25

    def test_phi_is_occupancy_times_ipc(self, profiler):
        """Eq. 4."""
        m = profiler.metrics(get_workload("kepler", "FHOTSPOT", seed=0))
        assert m.phi == pytest.approx(m.achieved_occupancy * m.ipc)

    def test_mix_fractions_sum_to_one(self, profiler):
        m = profiler.metrics(get_workload("kepler", "CCL", seed=0))
        assert sum(m.category_mix.values()) == pytest.approx(1.0)
        assert sum(m.instruction_mix.values()) == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        w = get_workload("kepler", "FMXM", seed=0)
        with pytest.raises(ConfigurationError):
            metrics_from_trace(KEPLER_K40C, w, ExecutionTrace())

    def test_one_shot_wrapper(self):
        m = profile_workload(VOLTA_V100, get_workload("volta", "HMXM", seed=0))
        assert isinstance(m, KernelMetrics)


class TestQualitativeShapes:
    def test_gemm_low_occupancy_decent_ipc(self, profiler):
        """Table I: GEMM trades occupancy for per-thread work (§IV-B)."""
        gemm = profiler.metrics(get_workload("kepler", "FGEMM", seed=0))
        assert gemm.achieved_occupancy < 0.3

    def test_nw_bottom_of_both_columns(self, profiler):
        """Table I: NW has the lowest occupancy AND lowest IPC on Kepler."""
        nw = profiler.metrics(get_workload("kepler", "NW", seed=0))
        mxm = profiler.metrics(get_workload("kepler", "FMXM", seed=0))
        assert nw.achieved_occupancy < 0.15
        assert nw.ipc < mxm.ipc

    def test_mxm_full_occupancy(self, profiler):
        mxm = profiler.metrics(get_workload("kepler", "FMXM", seed=0))
        assert mxm.achieved_occupancy > 0.6

    def test_lava_is_fma_heavy(self, profiler):
        """Figure 1: Lava's mix is dominated by floating-point arithmetic."""
        lava = profiler.metrics(get_workload("kepler", "FLAVA", seed=0))
        float_share = (
            lava.mix_fraction(OpCategory.FMA)
            + lava.mix_fraction(OpCategory.MUL)
            + lava.mix_fraction(OpCategory.ADD)
        )
        assert float_share > 0.4

    def test_integer_codes_have_no_float_ops(self, profiler):
        for code in ("CCL", "BFS", "NW", "MERGESORT", "QUICKSORT"):
            m = profiler.metrics(get_workload("kepler", code, seed=0))
            assert m.mix_fraction(OpCategory.FMA) == 0.0
            assert m.mix_fraction(OpCategory.MUL) == 0.0
            assert m.mix_fraction(OpCategory.INT) > 0.1

    def test_mma_dominates_tensor_gemm(self):
        m = profile_workload(VOLTA_V100, get_workload("volta", "HGEMM-MMA", seed=0))
        assert m.mix_fraction(OpCategory.MMA) > 0.5


class TestRendering:
    def test_table1_rows(self, profiler):
        m = profiler.metrics(get_workload("kepler", "FLUD", seed=0))
        row = m.table1_row()
        assert row["code"] == "FLUD"
        assert row["SHARED"].endswith("KB")
        text = metrics_table([m])
        assert "FLUD" in text

    def test_small_shared_rendered_in_bytes(self, profiler):
        m = profiler.metrics(get_workload("kepler", "CCL", seed=0))
        assert m.table1_row()["SHARED"] == "123B"

    def test_fig1_rows(self, profiler):
        m = profiler.metrics(get_workload("kepler", "FMXM", seed=0))
        row = m.fig1_row()
        assert set(row) == {"code"} | {c.value for c in OpCategory}
        text = instruction_mix_table([m])
        assert "FMA" in text

    def test_empty_rendering_rejected(self):
        with pytest.raises(ValueError):
            metrics_table([])
        with pytest.raises(ValueError):
            instruction_mix_table([])
