"""The ``repro`` facade: top-level surface, argument resolution, and the
seed/rngs deprecation path."""

import warnings

import pytest

import repro
from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi, Sassifi
from repro.workloads.base import Workload


# -- surface ----------------------------------------------------------------------


def test_facade_exports_the_blessed_surface():
    for name in (
        "run_campaign",
        "run_beam",
        "profile",
        "predict",
        "Session",
        "Config",
        "EccMode",
        "Outcome",
        "get_workload",
        "KEPLER_K40C",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_facade_matches_api_module():
    import repro.api

    for name in repro.api.__all__:
        assert getattr(repro, name) is getattr(repro.api, name)


# -- argument resolvers -----------------------------------------------------------


def test_as_device_accepts_names_and_specs():
    assert repro.as_device("kepler") is KEPLER_K40C
    assert repro.as_device("volta") is VOLTA_V100
    assert repro.as_device(VOLTA_V100) is VOLTA_V100


def test_as_device_falls_back_to_catalog():
    assert repro.as_device("K40c") is KEPLER_K40C


def test_as_workload_resolves_registry_codes():
    workload = repro.as_workload("FMXM", KEPLER_K40C, seed=3)
    assert isinstance(workload, Workload)
    assert workload.name == "FMXM"
    assert repro.as_workload(workload, KEPLER_K40C, seed=0) is workload


def test_as_framework_accepts_names_and_instances():
    assert isinstance(repro.as_framework("sassifi"), Sassifi)
    framework = NvBitFi()
    assert repro.as_framework(framework) is framework


@pytest.mark.parametrize(
    "raw,expected",
    [
        ("on", EccMode.ON),
        ("OFF", EccMode.OFF),
        (True, EccMode.ON),
        (False, EccMode.OFF),
        (EccMode.OFF, EccMode.OFF),
    ],
)
def test_as_ecc_spellings(raw, expected):
    assert repro.as_ecc(raw) is expected


def test_as_ecc_rejects_nonsense():
    with pytest.raises(ConfigurationError):
        repro.as_ecc("sometimes")


# -- operations (smoke) -----------------------------------------------------------


def test_run_campaign_from_the_top_level():
    campaign = repro.run_campaign("FMXM", device="kepler", injections=20, seed=1)
    assert campaign.injections == 20
    assert campaign.workload == "FMXM"
    total = sum(campaign.avf(o) for o in repro.Outcome)
    assert total == pytest.approx(1.0)


def test_run_campaign_is_seed_deterministic():
    a = repro.run_campaign("FMXM", injections=15, seed=8)
    b = repro.run_campaign("FMXM", injections=15, seed=8)
    assert a.records == b.records


def test_run_beam_from_the_top_level():
    result = repro.run_beam(
        "FMXM", device="kepler", ecc="off", beam_hours=24, max_fault_evals=30, seed=2
    )
    assert result.workload == "FMXM"
    assert result.fit_sdc.value >= 0
    assert result.fluence_n_cm2 > 0


def test_profile_from_the_top_level():
    metrics = repro.profile("FMXM", device="kepler")
    assert 0 < metrics.achieved_occupancy <= 1.0
    assert metrics.phi > 0


def test_predict_from_the_top_level():
    session = repro.Session(
        repro.Config(injections=40, beam_fault_evals=40, memory_avf_strikes=8)
    )
    prediction, note = repro.predict("FMXM", device="kepler", ecc="on", session=session)
    assert prediction.fit_sdc >= 0
    assert isinstance(note, str)


def test_predict_rejects_workload_instances():
    workload = repro.get_workload("kepler", "FMXM", seed=0)
    with pytest.raises(ConfigurationError):
        repro.predict(workload)


def test_session_facade_is_experiment_session():
    from repro.experiments.session import ExperimentSession

    assert repro.Session is ExperimentSession
    session = repro.Session(repro.Config(injections=25))
    campaign = session.campaign("kepler", "nvbitfi", "FMXM")
    assert campaign.injections == 25


# -- seed unification / rngs deprecation ------------------------------------------


def test_campaign_runner_rngs_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        runner = CampaignRunner(KEPLER_K40C, NvBitFi(), rngs=RngFactory(7))
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "CampaignRunner" in str(deprecations[0].message)
    assert "seed=" in str(deprecations[0].message)
    assert runner.rngs.root_seed == 7


def test_beam_experiment_rngs_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        experiment = BeamExperiment(KEPLER_K40C, rngs=RngFactory(5))
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "BeamExperiment" in str(deprecations[0].message)
    assert experiment.rngs.root_seed == 5


def test_rngs_and_seed_together_is_an_error():
    with pytest.raises(ValueError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            CampaignRunner(KEPLER_K40C, NvBitFi(), rngs=RngFactory(1), seed=2)


def test_seed_only_emits_no_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3)
        BeamExperiment(KEPLER_K40C, seed=3)
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_deprecated_rngs_still_drives_identical_results():
    workload = repro.get_workload("kepler", "FMXM", seed=5)
    new_style = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=6).run(workload, 10)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        old_style = CampaignRunner(KEPLER_K40C, NvBitFi(), rngs=RngFactory(6)).run(workload, 10)
    assert new_style.records == old_style.records
