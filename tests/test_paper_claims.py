"""Integration tests of the paper's headline claims, at reduced scale.

Each test regenerates a slice of the evaluation through the full pipeline
and checks the *qualitative* finding (who is bigger, which direction the
effect points).  EXPERIMENTS.md records the quantitative comparison at
full scale.
"""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.faultsim.campaign import run_campaign
from repro.faultsim.frameworks import NvBitFi, Sassifi
from repro.faultsim.outcomes import Outcome
from repro.microbench.registry import get_microbench
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def kepler_beam():
    return BeamExperiment(KEPLER_K40C, seed=0)


@pytest.fixture(scope="module")
def volta_beam():
    return BeamExperiment(VOLTA_V100, seed=0)


def _ubench_fit(beam, arch, name, ecc=EccMode.ON):
    wl = get_microbench(arch, name, seed=0)
    return beam.run(wl, ecc=ecc, beam_hours=72, mode="expected", max_fault_evals=100)


class TestFigure3Claims:
    def test_kepler_int_above_fp32(self, kepler_beam):
        """§V-B: INT32 micro-benchmarks ≈ 4× the FP32 ones on Kepler."""
        fadd = _ubench_fit(kepler_beam, "kepler", "FADD").fit_sdc.value
        iadd = _ubench_fit(kepler_beam, "kepler", "IADD").fit_sdc.value
        assert 2.0 < iadd / fadd < 8.0

    def test_kepler_imul_above_iadd(self, kepler_beam):
        """§V-B: IMUL ≈ 30% above IADD; IMAD above both."""
        iadd = _ubench_fit(kepler_beam, "kepler", "IADD").fit_sdc.value
        imul = _ubench_fit(kepler_beam, "kepler", "IMUL").fit_sdc.value
        imad = _ubench_fit(kepler_beam, "kepler", "IMAD").fit_sdc.value
        assert imul > iadd
        assert imad > imul

    def test_ldst_is_the_only_due_dominated_ubench(self, kepler_beam):
        """§V-B: LDST is the only micro-benchmark whose DUE rate exceeds
        its SDC rate (corrupted addresses are mostly invalid)."""
        ldst = _ubench_fit(kepler_beam, "kepler", "LDST")
        assert ldst.fit_due.value > ldst.fit_sdc.value
        for name in ("FADD", "FFMA", "IMAD"):
            r = _ubench_fit(kepler_beam, "kepler", name)
            assert r.fit_sdc.value > r.fit_due.value, name

    def test_volta_precision_monotone(self, volta_beam):
        """§VI: the higher the precision, the higher the FIT."""
        h = _ubench_fit(volta_beam, "volta", "HFMA").fit_sdc.value
        f = _ubench_fit(volta_beam, "volta", "FFMA").fit_sdc.value
        d = _ubench_fit(volta_beam, "volta", "DFMA").fit_sdc.value
        assert h < f < d

    def test_mma_an_order_above_scalar_units(self, volta_beam):
        """§V-B: HMMA/FMMA ≈ 12× DFMA."""
        dfma = _ubench_fit(volta_beam, "volta", "DFMA").fit_sdc.value
        hmma = _ubench_fit(volta_beam, "volta", "HMMA").fit_sdc.value
        assert 6.0 < hmma / dfma < 25.0

    def test_mma_more_reliable_per_useful_op(self, volta_beam):
        """§V-B: one warp-wide MMA replaces 64/32 = 2 warps of FMAs, so per
        useful multiply-accumulate the tensor core wins despite its raw FIT."""
        hfma = _ubench_fit(volta_beam, "volta", "HFMA").fit_sdc.value
        hmma = _ubench_fit(volta_beam, "volta", "HMMA").fit_sdc.value
        # one 16×16×16 MMA = 4096 MACs; one FMA lane-op = 1 MAC.
        # scale both to FIT per delivered MAC-throughput: the MMA unit
        # delivers 4096 MACs per 64-instruction tile issue.
        macs_per_mma_exposure = 4096 / 64
        assert hmma / macs_per_mma_exposure < hfma * 2

    def test_kepler_rf_bits_more_sensitive_than_volta(self, kepler_beam, volta_beam):
        """§V-B: 28 nm planar RF ≈ an order of magnitude above 16 nm FinFET
        *per bit* — Figure 3 reports the RF row per megabyte, so the raw
        FITs must be normalized by the exposed footprint (Volta's 80 SMs
        expose ~5× more register file than Kepler's 15)."""
        from repro.arch.units import UnitKind

        per_mb = {}
        for beam, arch in ((kepler_beam, "kepler"), (volta_beam, "volta")):
            wl = get_microbench(arch, "RF", seed=0)
            result = beam.run(wl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=100)
            _, profile = beam.exposure(wl, EccMode.OFF)
            bits = (
                profile.storage_sigma_eff[UnitKind.REGISTER_FILE]
                / beam.catalog.bit_sigma[UnitKind.REGISTER_FILE]
            )
            per_mb[arch] = result.fit_sdc.value / (bits / 8e6)
        assert per_mb["kepler"] / per_mb["volta"] > 5.0


class TestFigure4Claims:
    def test_float_codes_have_higher_avf_than_integer(self):
        """§VI: Gaussian/LUD/MxM/Lava top the AVF list; the integer codes
        (Quicksort/Mergesort/CCL/NW) sit at the bottom."""
        float_avg = 0.0
        for code in ("FMXM", "FLAVA"):
            c = run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", code, seed=0), 80, seed=1)
            float_avg += c.avf(Outcome.SDC) / 2
        int_avg = 0.0
        for code in ("CCL", "QUICKSORT"):
            c = run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", code, seed=0), 80, seed=1)
            int_avg += c.avf(Outcome.SDC) / 2
        assert float_avg > int_avg + 0.1

    def test_nvbitfi_avf_above_sassifi_on_average(self):
        """§VI: the newer toolchain's code yields ~18% higher AVF."""
        gaps = []
        for code in ("FMXM", "FLAVA", "FGAUSSIAN", "MERGESORT"):
            w = get_workload("kepler", code, seed=0)
            s = run_campaign(KEPLER_K40C, Sassifi(), w, 80, seed=1).avf(Outcome.SDC)
            n = run_campaign(KEPLER_K40C, NvBitFi(), w, 80, seed=1).avf(Outcome.SDC)
            gaps.append((n - s) / max(s, 1e-6))
        assert sum(gaps) / len(gaps) > 0.0

    def test_yolov2_tolerates_more_than_yolov3(self):
        """§VI: the less accurate CNN masks more corruptions."""
        v2 = run_campaign(VOLTA_V100, NvBitFi(), get_workload("volta", "FYOLOV2", seed=0), 80, seed=1)
        v3 = run_campaign(VOLTA_V100, NvBitFi(), get_workload("volta", "FYOLOV3", seed=0), 80, seed=1)
        assert v2.avf(Outcome.SDC) <= v3.avf(Outcome.SDC) + 0.05

    def test_cnn_avf_far_below_gemm(self):
        """§VI: CNNs share GEMM's fault exposure but classification-aware
        outputs mask almost everything."""
        gemm = run_campaign(VOLTA_V100, NvBitFi(), get_workload("volta", "FGEMM", seed=0), 80, seed=1)
        yolo = run_campaign(VOLTA_V100, NvBitFi(), get_workload("volta", "FYOLOV3", seed=0), 80, seed=1)
        assert yolo.avf(Outcome.SDC) < 0.5 * gemm.avf(Outcome.SDC)


class TestFigure5Claims:
    def test_ecc_cuts_sdc_substantially(self, kepler_beam):
        """§VI: ECC OFF SDC up to ~21× ECC ON on K40c."""
        ratios = []
        for code in ("FMXM", "FHOTSPOT"):
            wl = get_workload("kepler", code, seed=0)
            off = kepler_beam.run(wl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
            on = kepler_beam.run(wl, ecc=EccMode.ON, beam_hours=72, mode="expected", max_fault_evals=80)
            ratios.append(off.fit_sdc.value / on.fit_sdc.value)
        assert max(ratios) > 2.0

    def test_matmul_family_tops_sdc_chart(self, kepler_beam):
        """§VI: matrix multiplication has the highest SDC FIT."""
        wl_mxm = get_workload("kepler", "FMXM", seed=0)
        wl_ccl = get_workload("kepler", "CCL", seed=0)
        mxm = kepler_beam.run(wl_mxm, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
        ccl = kepler_beam.run(wl_ccl, ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=80)
        assert mxm.fit_sdc.value > 3.0 * ccl.fit_sdc.value

    def test_volta_precision_raises_code_fit(self, volta_beam):
        """§VI: increasing precision increases the code FIT rate.

        The true FP64-vs-FP16 SDC gap is ~16%, so the stratified estimate
        needs a real evaluation budget: the register-file p_sdc difference
        (0.094 vs 0.074) drowns in sampling noise below ~2000 evals.
        """
        h = volta_beam.run(get_workload("volta", "HMXM", seed=0), ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=2000)
        d = volta_beam.run(get_workload("volta", "DMXM", seed=0), ecc=EccMode.OFF, beam_hours=72, mode="expected", max_fault_evals=2000)
        assert d.fit_sdc.value > h.fit_sdc.value


class TestFigure6AndDueClaims:
    @pytest.fixture(scope="class")
    def session(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.session import ExperimentSession

        return ExperimentSession(ExperimentConfig(injections=100, beam_fault_evals=80, memory_avf_strikes=20))

    def test_sdc_prediction_within_factors_for_core_codes(self, session):
        """§VII-A: SDC predictions land within ~5× of the beam for most
        codes (we check a relaxed 10× at this reduced campaign scale)."""
        from repro.predict.compare import compare_code

        within = 0
        codes = ("FMXM", "FLAVA", "FHOTSPOT", "MERGESORT")
        for code in codes:
            beam = session.beam("kepler", code, EccMode.OFF)
            pred, _ = session.predict("kepler", "nvbitfi", code, EccMode.OFF)
            row = compare_code(beam, pred, "NVBITFI")
            if row.within <= 10.0:
                within += 1
        assert within >= 3

    def test_due_massively_underpredicted(self, session):
        """§VII-B: the beam DUE rate exceeds the prediction by orders of
        magnitude — DUEs originate in resources injectors cannot reach."""
        from repro.predict.compare import compare_code, due_underestimation

        rows = []
        for code in ("FMXM", "FHOTSPOT", "MERGESORT"):
            beam = session.beam("kepler", code, EccMode.ON)
            pred, _ = session.predict("kepler", "nvbitfi", code, EccMode.ON)
            rows.append(compare_code(beam, pred, "NVBITFI", metric="due"))
        assert due_underestimation(rows) > 20.0

    def test_due_dominated_by_non_instruction_resources(self, session):
        """§VII-B mechanism check: most beam DUEs trace to hidden resources
        and ECC detections, not arithmetic instructions."""
        beam = session.beam("kepler", "FMXM", EccMode.ON)
        shares = beam.breakdown(Outcome.DUE)
        arith = sum(v for k, v in shares.items() if k.startswith("op:") and "LD" not in k and "ST" not in k)
        assert arith < 0.5
