"""Workload trace characteristics: each code must exercise the hardware
features its real counterpart is known for (pins Figure 1 realism)."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpClass
from repro.profiling.profiler import Profiler
from repro.workloads.registry import get_workload

_KEPLER = Profiler(KEPLER_K40C)
_VOLTA = Profiler(VOLTA_V100)


def _trace(arch, code):
    profiler = _KEPLER if arch == "kepler" else _VOLTA
    return profiler.golden_run(get_workload(arch, code, seed=3)).trace


class TestSharedMemoryUsers:
    def test_gemm_stages_through_shared(self):
        trace = _trace("kepler", "FGEMM")
        assert trace.instances[OpClass.LDS] > 0
        assert trace.instances[OpClass.STS] > 0
        assert trace.barriers > 0

    def test_lud_stages_pivot_row(self):
        trace = _trace("kepler", "FLUD")
        assert trace.instances[OpClass.LDS] > 0

    def test_mxm_is_shared_free(self):
        """The naive version reads straight from global memory."""
        trace = _trace("kepler", "FMXM")
        assert trace.instances.get(OpClass.LDS, 0) == 0


class TestInstructionSignatures:
    def test_lava_uses_transcendentals(self):
        trace = _trace("kepler", "FLAVA")
        assert trace.instances[OpClass.MUFU] > 0

    def test_mergesort_uses_xor_partnering(self):
        trace = _trace("kepler", "MERGESORT")
        assert trace.instances[OpClass.LOP] > 0
        assert trace.instances[OpClass.IMNMX] > 0

    def test_nw_is_max_heavy(self):
        trace = _trace("kepler", "NW")
        assert trace.instances[OpClass.IMNMX] >= trace.instances.get(OpClass.IMUL, 0)

    def test_gaussian_divides(self):
        trace = _trace("kepler", "FGAUSSIAN")
        assert trace.instances[OpClass.MUFU] > 0  # reciprocal for the pivot

    def test_gemm_mma_has_no_scalar_fma(self):
        trace = _trace("volta", "HGEMM-MMA")
        assert trace.instances[OpClass.HMMA] > 0
        assert trace.instances.get(OpClass.HFMA, 0) == 0

    def test_fgemm_mma_casts_inputs(self):
        """FP32 data reaches the tensor core through CVT (§V-A)."""
        trace = _trace("volta", "FGEMM-MMA")
        assert trace.instances[OpClass.CVT] > 0
        assert trace.instances[OpClass.FMMA] > 0


class TestHostInteraction:
    @pytest.mark.parametrize("code", ["BFS", "CCL", "QUICKSORT"])
    def test_iterative_codes_sync_often(self, code):
        trace = _trace("kepler", code)
        assert trace.host_syncs >= 3

    def test_mxm_syncs_once(self):
        assert _trace("kepler", "FMXM").host_syncs <= 2


class TestDivergence:
    def test_gaussian_leaves_warps_idle(self):
        """The shrinking active region retires whole warps."""
        assert _trace("kepler", "FGAUSSIAN").activity_factor < 0.95

    def test_nw_starves_the_device_via_occupancy(self):
        """NW's single-warp wavefront always keeps its one warp nominally
        occupied (activity ≈ 1 at warp granularity); its starvation shows
        up as Table I's rock-bottom achieved occupancy instead."""
        metrics = _KEPLER.metrics(get_workload("kepler", "NW", seed=3))
        assert metrics.achieved_occupancy < 0.15

    def test_dense_codes_keep_warps_busy(self):
        assert _trace("kepler", "FMXM").activity_factor > 0.95


class TestPrecisionFamilies:
    def test_same_kernel_same_mix_across_precisions(self):
        """Hotspot/Lava/MxM 'execute the same kernel for all precisions'
        (§VI) — identical instruction mixes, different dtypes."""
        for family in ("LAVA", "HOTSPOT", "MXM"):
            mixes = []
            for prefix in "HFD":
                trace = _trace("volta", f"{prefix}{family}")
                mixes.append(trace.category_mix())
            for cat in mixes[0]:
                assert mixes[0][cat] == pytest.approx(mixes[1][cat], abs=1e-9)
                assert mixes[0][cat] == pytest.approx(mixes[2][cat], abs=1e-9)

    def test_gemm_kernels_differ_by_precision(self):
        """GEMM is precision-specialized ('a different kernel for each
        input and precision configuration', §VI)."""
        f = _trace("volta", "FGEMM").total_instances
        d = _trace("volta", "DGEMM").total_instances
        assert f != d
