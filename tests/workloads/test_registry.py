"""Workload registry: Table I coverage and metadata consistency."""

import pytest

from repro.arch.dtypes import DType
from repro.common.errors import ConfigurationError
from repro.workloads.registry import (
    WORKLOAD_BUILDERS,
    all_codes,
    get_workload,
    kepler_codes,
    volta_codes,
)


class TestCoverage:
    def test_kepler_table1_codes_present(self):
        expected = {
            "CCL", "BFS", "FLAVA", "FHOTSPOT", "FGAUSSIAN", "FLUD", "NW",
            "FMXM", "FGEMM", "MERGESORT", "QUICKSORT", "FYOLOV2", "FYOLOV3",
        }
        assert expected <= set(kepler_codes())

    def test_volta_table1_codes_present(self):
        expected = {
            "HLAVA", "FLAVA", "DLAVA", "HHOTSPOT", "FHOTSPOT", "DHOTSPOT",
            "HMXM", "FMXM", "DMXM", "HGEMM", "FGEMM", "DGEMM",
            "HGEMM-MMA", "FGEMM-MMA", "HYOLOV3", "FYOLOV3",
        }
        assert expected <= set(volta_codes())

    def test_all_codes_shape(self):
        codes = all_codes()
        assert set(codes) == {"kepler", "volta"}


class TestMetadata:
    @pytest.mark.parametrize("arch", ["kepler", "volta"])
    def test_prefix_matches_dtype(self, arch):
        """The paper's naming convention: H/F/D prefix == fp16/32/64."""
        for code in WORKLOAD_BUILDERS[arch]:
            w = get_workload(arch, code)
            if code[0] in "HFD" and code not in ("FLUD",):  # FLUD: F prefix is real
                pass
            if w.spec.dtype is DType.INT32:
                assert code[0] not in "HD"
            else:
                assert code.startswith(w.spec.dtype.prefix), code

    def test_proprietary_flags(self):
        """GEMM and YOLO are cuBLAS/cuDNN-backed (§III-D)."""
        for arch, code in [("kepler", "FGEMM"), ("kepler", "FYOLOV2"), ("volta", "HGEMM-MMA")]:
            assert get_workload(arch, code).spec.proprietary
        for arch, code in [("kepler", "FMXM"), ("kepler", "CCL"), ("volta", "DLAVA")]:
            assert not get_workload(arch, code).spec.proprietary

    def test_mma_flags(self):
        assert get_workload("volta", "HGEMM-MMA").spec.uses_mma
        assert not get_workload("volta", "HGEMM").spec.uses_mma

    def test_integer_codes_are_int32(self):
        for code in ("CCL", "BFS", "NW", "MERGESORT", "QUICKSORT"):
            assert get_workload("kepler", code).spec.dtype is DType.INT32

    def test_precision_families_share_base(self):
        for prefix in "HFD":
            assert get_workload("volta", f"{prefix}MXM").spec.base == "MxM"

    def test_registers_positive_and_bounded(self):
        for arch, codes in WORKLOAD_BUILDERS.items():
            for code in codes:
                spec = get_workload(arch, code).spec
                assert 1 <= spec.registers_per_thread <= 255


class TestErrors:
    def test_unknown_arch(self):
        with pytest.raises(ConfigurationError):
            get_workload("pascal", "FMXM")

    def test_unknown_code(self):
        with pytest.raises(ConfigurationError):
            get_workload("kepler", "HPL")

    def test_case_insensitive_lookup(self):
        assert get_workload("KEPLER", "fmxm").name == "FMXM"
