"""YOLO: classification-aware SDC criterion and network structure."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.dtypes import DType
from repro.sim.launch import run_kernel
from repro.workloads.base import CompareResult
from repro.workloads.registry import get_workload
from repro.workloads.yolo import BOX_CHANNELS, HEAD_CHANNELS, YOLOV2, YOLOV3


@pytest.fixture(scope="module")
def v2():
    return get_workload("kepler", "FYOLOV2", seed=1)


@pytest.fixture(scope="module")
def golden(v2):
    return run_kernel(KEPLER_K40C, v2.kernel, v2.sim_launch()).outputs


class TestArchitecture:
    def test_v3_is_deeper_than_v2(self):
        assert len(YOLOV3.stage1 + YOLOV3.stage2) > len(YOLOV2.stage1 + YOLOV2.stage2)

    def test_v3_stricter_tolerance(self):
        """The more accurate network tolerates less output perturbation —
        the paper's explanation for YOLOv3's higher AVF (§VI)."""
        assert YOLOV3.box_rel_tol < YOLOV2.box_rel_tol

    def test_v3_has_residual_layers(self):
        assert any(c.residual for c in YOLOV3.stage1 + YOLOV3.stage2)
        assert not any(c.residual for c in YOLOV2.stage1 + YOLOV2.stage2)

    def test_output_shape(self, golden):
        det = golden["detections"]
        assert det.shape[-1] == HEAD_CHANNELS

    def test_instruction_mix_gemm_like(self, v2):
        run = run_kernel(KEPLER_K40C, v2.kernel, v2.sim_launch())
        from repro.arch.isa import OpCategory

        cats = run.trace.category_mix()
        assert cats[OpCategory.FMA] > 0.05  # convolution = FMA loops


class TestCompareCriterion:
    def test_identical_matches(self, v2, golden):
        assert v2.compare(golden, {k: v.copy() for k, v in golden.items()}) is CompareResult.MATCH

    def test_nondetected_cell_tolerates_changes(self, v2, golden):
        det = golden["detections"].copy()
        cells = det.reshape(-1, HEAD_CHANNELS)
        quiet = np.flatnonzero(cells[:, BOX_CHANNELS] <= 0)
        if quiet.size == 0:
            pytest.skip("no quiet cell in this seed")
        cells[quiet[0], :BOX_CHANNELS] += 100.0  # huge box change, no object
        assert v2.compare(golden, {"detections": det}) is CompareResult.MATCH

    def test_objectness_flip_is_sdc(self, v2, golden):
        det = golden["detections"].copy()
        cells = det.reshape(-1, HEAD_CHANNELS)
        cells[:, BOX_CHANNELS] = -np.abs(cells[:, BOX_CHANNELS]) - 1.0  # kill all detections
        result = v2.compare(golden, {"detections": det})
        active = (golden["detections"].reshape(-1, HEAD_CHANNELS)[:, BOX_CHANNELS] > 0).any()
        assert result is (CompareResult.SDC if active else CompareResult.MATCH)

    def test_class_swap_is_sdc(self, v2, golden):
        det = golden["detections"].copy()
        cells = det.reshape(-1, HEAD_CHANNELS)
        active = np.flatnonzero(cells[:, BOX_CHANNELS] > 0)
        if active.size == 0:
            pytest.skip("no detected cell in this seed")
        scores = cells[active[0], BOX_CHANNELS + 1 :]
        top = int(np.argmax(scores))
        other = (top + 1) % scores.size
        scores[top], scores[other] = scores[other], scores[top]
        assert v2.compare(golden, {"detections": det}) is CompareResult.SDC

    def test_tiny_box_shift_tolerated(self, v2, golden):
        det = golden["detections"].copy()
        det *= np.float32(1.0 + 1e-4)  # 0.01% shift, far below the 10% tol
        # monotonic scaling never flips objectness signs at 1.0001
        assert v2.compare(golden, {"detections": det}) is CompareResult.MATCH

    def test_nan_output_is_sdc(self, v2, golden):
        det = golden["detections"].copy()
        det.reshape(-1)[0] = np.nan
        assert v2.compare(golden, {"detections": det}) is CompareResult.SDC

    def test_v2_more_tolerant_than_v3(self):
        """The same mid-size box perturbation passes v2's criterion and
        fails v3's."""
        v2w = get_workload("kepler", "FYOLOV2", seed=1)
        v3w = get_workload("kepler", "FYOLOV3", seed=1)
        for w in (v2w, v3w):
            golden = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch()).outputs
            det = golden["detections"].copy()
            cells = det.reshape(-1, HEAD_CHANNELS)
            active = np.flatnonzero(cells[:, BOX_CHANNELS] > 0)
            if active.size == 0:
                pytest.skip("no detection")
            cells[active[0], 0] *= np.float32(1.05)  # 5% box drift
            result = w.compare(golden, {"detections": det})
            if w is v2w:
                assert result is CompareResult.MATCH
            else:
                assert result is CompareResult.SDC

    def test_half_precision_variant_runs(self):
        w = get_workload("volta", "HYOLOV3", seed=1)
        assert w.spec.dtype is DType.FP16
        from repro.arch.devices import VOLTA_V100

        run = run_kernel(VOLTA_V100, w.kernel, w.sim_launch())
        assert np.isfinite(run.outputs["detections"].astype(np.float64)).all()
