"""Workload base: spec validation, default comparison, input helpers."""

import numpy as np
import pytest

from repro.arch.dtypes import DType
from repro.common.errors import ConfigurationError
from repro.workloads.base import (
    CompareResult,
    Workload,
    WorkloadSpec,
    float_dtype_range,
    random_floats,
)


class _Dummy(Workload):
    def _generate_inputs(self, rng):
        self.x = rng.random(4)

    def sim_launch(self):
        from repro.sim.launch import LaunchConfig

        return LaunchConfig(1, 32)

    def kernel(self, ctx):
        return {}


def _spec(**kw):
    defaults = dict(name="T", base="t", dtype=DType.FP32)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestSpec:
    def test_defaults(self):
        spec = _spec()
        assert not spec.proprietary and not spec.uses_mma
        assert spec.registers_per_thread > 0

    def test_zero_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(registers_per_thread=0)

    def test_negative_shared_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(shared_bytes_per_block=-1)


class TestLifecycle:
    def test_prepare_idempotent(self):
        w = _Dummy(_spec(), seed=1)
        w.prepare()
        x = w.x
        w.prepare()
        assert w.x is x

    def test_reference_occupancy_inputs_clamped(self):
        from repro.arch.devices import KEPLER_K40C

        w = _Dummy(_spec(registers_per_thread=999))
        inputs = w.reference_occupancy_inputs(KEPLER_K40C)
        assert inputs["registers_per_thread"] == KEPLER_K40C.max_registers_per_thread


class TestDefaultCompare:
    def _w(self):
        return _Dummy(_spec())

    def test_identical_match(self):
        w = self._w()
        g = {"a": np.arange(4, dtype=np.float32)}
        assert w.compare(g, {"a": g["a"].copy()}) is CompareResult.MATCH

    def test_single_ulp_is_sdc(self):
        w = self._w()
        g = np.ones(4, dtype=np.float32)
        o = g.copy()
        o[2] = np.nextafter(o[2], 2.0)
        assert w.compare({"a": g}, {"a": o}) is CompareResult.SDC

    def test_nan_equal_bit_patterns_match(self):
        w = self._w()
        g = np.array([np.nan, 1.0], dtype=np.float32)
        assert w.compare({"a": g}, {"a": g.copy()}) is CompareResult.MATCH

    def test_shape_change_is_sdc(self):
        w = self._w()
        assert (
            w.compare({"a": np.zeros(4, np.float32)}, {"a": np.zeros(5, np.float32)})
            is CompareResult.SDC
        )

    def test_missing_output_is_sdc(self):
        w = self._w()
        assert w.compare({"a": np.zeros(4, np.float32)}, {}) is CompareResult.SDC

    def test_int_compare(self):
        w = self._w()
        g = np.arange(4, dtype=np.int32)
        o = g.copy()
        o[0] ^= 1
        assert w.compare({"a": g}, {"a": o}) is CompareResult.SDC


class TestInputHelpers:
    def test_fp16_range_avoids_overflow(self):
        """The micro-benchmark design rule: inputs avoid overflow (§V-A);
        FP16's max is ~65504, so generated values stay small."""
        assert float_dtype_range(DType.FP16) <= 4.0

    @pytest.mark.parametrize("dtype", list(DType))
    def test_random_floats_dtype_and_range(self, dtype):
        rng = np.random.default_rng(0)
        arr = random_floats(rng, (100,), dtype)
        assert arr.dtype == dtype.np_dtype
        assert np.abs(arr.astype(np.float64)).max() <= float_dtype_range(dtype)
