"""Every workload's simulator kernel must reproduce its reference output
bit-for-bit — the foundation the SDC classification stands on."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.sim.launch import run_kernel
from repro.workloads.registry import WORKLOAD_BUILDERS, get_workload

_DEVICES = {"kepler": KEPLER_K40C, "volta": VOLTA_V100}

_ALL_CONFIGS = [
    (arch, code) for arch, codes in WORKLOAD_BUILDERS.items() for code in codes
]


@pytest.mark.parametrize("arch,code", _ALL_CONFIGS)
def test_matches_reference(arch, code):
    workload = get_workload(arch, code, seed=11)
    run = run_kernel(_DEVICES[arch], workload.kernel, workload.sim_launch())
    reference = workload.reference_outputs()
    if reference is None:
        pytest.skip(f"{code} validated by invariants (no closed form)")
    assert set(reference) == set(run.outputs)
    for name in reference:
        np.testing.assert_array_equal(
            reference[name], run.outputs[name], err_msg=f"{arch}/{code}/{name}"
        )


@pytest.mark.parametrize("arch,code", _ALL_CONFIGS)
def test_deterministic_across_runs(arch, code):
    workload = get_workload(arch, code, seed=5)
    device = _DEVICES[arch]
    first = run_kernel(device, workload.kernel, workload.sim_launch())
    second = run_kernel(device, workload.kernel, workload.sim_launch())
    for name in first.outputs:
        np.testing.assert_array_equal(first.outputs[name], second.outputs[name])
    assert first.trace.total_instances == second.trace.total_instances


@pytest.mark.parametrize("arch,code", _ALL_CONFIGS)
def test_trace_is_nonempty_and_finite(arch, code):
    workload = get_workload(arch, code, seed=2)
    run = run_kernel(_DEVICES[arch], workload.kernel, workload.sim_launch())
    assert run.trace.total_instances > 0
    assert 0.0 < run.trace.activity_factor <= 1.0
    for name, out in run.outputs.items():
        if out.dtype.kind == "f":
            assert np.isfinite(out.astype(np.float64)).all(), f"{code}/{name} not finite"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_seeds_change_inputs(seed):
    a = get_workload("kepler", "FMXM", seed=seed)
    b = get_workload("kepler", "FMXM", seed=seed + 10)
    a.prepare()
    b.prepare()
    assert not np.array_equal(a.a, b.a)


def test_sorts_actually_sort():
    for code in ("MERGESORT", "QUICKSORT"):
        w = get_workload("kepler", code, seed=9)
        run = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch())
        data = run.outputs["data"]
        assert (np.diff(data) >= 0).all(), code


def test_bfs_costs_are_valid_levels():
    w = get_workload("kepler", "BFS", seed=4)
    run = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch())
    cost = run.outputs["cost"]
    assert cost[0] == 0
    # chain backbone guarantees reachability
    assert (cost >= 0).all()
    # every reached node's cost is at most the chain distance
    assert (cost <= np.arange(len(cost))).all()


def test_ccl_labels_are_component_minima():
    w = get_workload("kepler", "CCL", seed=4)
    run = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch())
    labels = run.outputs["labels"]
    fg = w.image.reshape(-1) > 0
    assert (labels[~fg] == -1).all()
    assert (labels[fg] <= np.flatnonzero(fg)).all()


def test_nw_score_matrix_monotone_on_diagonal_dominated_inputs():
    w = get_workload("kepler", "NW", seed=4)
    run = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch())
    score = run.outputs["score"]
    assert score.shape == (w.n + 1, w.n + 1)


def test_gemm_mma_matches_gemm_loosely():
    """Tensor-core GEMM must agree with the scalar reference within FP16
    accumulation error (they compute the same product)."""
    w = get_workload("volta", "FGEMM-MMA", seed=6)
    run = run_kernel(VOLTA_V100, w.kernel, w.sim_launch())
    w.prepare()
    exact = w.a.astype(np.float64) @ w.b.astype(np.float64)
    got = run.outputs["c"].astype(np.float64)
    rel = np.abs(got - exact) / np.maximum(np.abs(exact), 1.0)
    assert rel.max() < 0.05
