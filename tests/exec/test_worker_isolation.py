"""Pool-worker telemetry isolation, including across a pool rebuild.

Fork-started pool workers inherit the parent's active telemetry context —
under a ``telemetry_session`` that includes the parent's *open trace-file
sink*, so an uninitialised worker would interleave events straight into
the parent's trace and leak the parent's counters into chunk evaluation.
``ProcessExecutor`` installs :func:`_worker_telemetry_reset` as the pool
initializer; these tests pin that contract and its hardest corner: a pool
*rebuilt* after a worker crash (``BrokenProcessPool``) must re-register
the same isolation, because ``initializer=`` only helps if it rides
through ``_rebuild_pool`` too."""

import os
import signal

from repro.exec.engine import ProcessExecutor
from repro.store.policy import RunPolicy
from repro.telemetry import get_telemetry, telemetry_session
from repro.telemetry.events import NULL_SINK

TASKS = list(range(8))


def probe_chunk(context, tasks):
    """Report, from inside the worker, what telemetry context it sees."""
    telemetry = get_telemetry()
    telemetry.count("probe.ran")
    telemetry.point("probe.leak")  # must die in NULL_SINK, never hit a trace
    return [
        (
            os.getpid(),
            telemetry.sink is NULL_SINK,
            telemetry.registry.counters.get("parent.marker", 0),
        )
        for _ in tasks
    ]


def suicide_chunk(context, tasks):
    """SIGKILL the first worker that runs this (never the parent)."""
    marker, parent_pid = context
    if os.getpid() != parent_pid:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return [index for index in tasks]


def _assert_isolated(probes, parent_pid):
    assert len(probes) == len(TASKS)
    for pid, sink_is_null, parent_marker in probes:
        assert pid != parent_pid, "a chunk ran in the parent process"
        assert sink_is_null, "worker inherited the parent's live sink"
        assert parent_marker == 0, "worker inherited the parent's counters"


def test_pool_workers_get_fresh_sinkless_telemetry(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with ProcessExecutor(workers=2) as executor:
        with telemetry_session(trace_path=str(trace)) as telemetry:
            telemetry.count("parent.marker")
            probes = executor.run_chunks(probe_chunk, None, TASKS)
            _assert_isolated(probes, os.getpid())
            # nothing the workers counted bleeds into the parent registry
            # (chunk metrics only travel via explicitly captured snapshots)
            assert "probe.ran" not in telemetry.registry.counters
    assert "probe.leak" not in trace.read_text()


def test_rebuilt_pool_reinstalls_worker_isolation(tmp_path):
    """The regression case: after a SIGKILLed worker breaks the pool, the
    transparently rebuilt pool must run the telemetry initializer again."""
    trace = tmp_path / "trace.jsonl"
    marker = str(tmp_path / "killed")
    with ProcessExecutor(workers=2) as executor:
        with telemetry_session(trace_path=str(trace)) as telemetry:
            telemetry.count("parent.marker")
            # storeless + retries: the broken pool is rebuilt and the
            # in-flight chunks resubmitted against the retry budget
            results = executor.run_chunks(
                suicide_chunk, (marker, os.getpid()), TASKS,
                policy=RunPolicy(retries=2),
            )
            assert os.path.exists(marker), "the kamikaze chunk never fired"
            assert sorted(results) == TASKS
            assert telemetry.registry.counters["exec.chunk_retries"] >= 1

            # same executor, post-rebuild pool: isolation still holds
            probes = executor.run_chunks(probe_chunk, None, TASKS)
            _assert_isolated(probes, os.getpid())
    assert "probe.leak" not in trace.read_text()
