"""The parallel execution engine's core contract: bit-identical results
for any worker count, chunking, or scheduling (repro.exec)."""

import io
import os

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.beam.experiment import BeamExperiment
from repro.common.errors import ConfigurationError
from repro.exec.engine import (
    ProcessExecutor,
    SerialExecutor,
    default_chunksize,
    get_executor,
)
from repro.exec.progress import ProgressMeter
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi
from repro.predict.model import measure_memory_avf
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("kepler", "FMXM", seed=5)


# -- executor resolution ----------------------------------------------------------


def test_get_executor_defaults_to_serial():
    assert isinstance(get_executor(None), SerialExecutor)
    assert isinstance(get_executor(1), SerialExecutor)


def test_get_executor_builds_pool_for_many_workers():
    executor = get_executor(3)
    assert isinstance(executor, ProcessExecutor)
    assert executor.workers == 3
    executor.close()


def test_get_executor_autosizes_workers_zero():
    executor = get_executor(0)
    expected = os.cpu_count() or 1
    if expected == 1:
        assert isinstance(executor, SerialExecutor)
    else:
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == expected
    executor.close()


def test_get_executor_explicit_executor_wins():
    shared = SerialExecutor()
    assert get_executor(8, shared) is shared


def test_get_executor_rejects_negative():
    with pytest.raises(ConfigurationError):
        get_executor(-2)


def test_default_chunksize_targets_four_chunks_per_worker():
    assert default_chunksize(200, 2) == 25
    assert default_chunksize(1, 8) == 1
    assert default_chunksize(0, 4) == 1
    # every task is covered: ceil division never under-allocates
    for n in (1, 7, 33, 100):
        for w in (1, 2, 5):
            size = default_chunksize(n, w)
            assert size * (-(-n // size)) >= n


def test_process_executor_preserves_task_order(workload):
    """Results come back in task order even when chunks finish out of order."""
    runner_serial = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=11)
    serial = runner_serial.run(workload, 16)
    with ProcessExecutor(2, chunksize=3) as executor:
        runner_odd = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=11, executor=executor)
        odd_chunks = runner_odd.run(workload, 16)
    assert serial.records == odd_chunks.records


# -- determinism: serial ≡ parallel -----------------------------------------------


def test_campaign_bit_identical_across_worker_counts(workload):
    serial = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3).run(workload, 30)
    parallel = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=3, workers=2).run(workload, 30)
    assert serial.records == parallel.records
    assert serial.workload == parallel.workload
    assert serial.framework == parallel.framework


def test_beam_bit_identical_across_worker_counts(workload):
    kwargs = dict(ecc=EccMode.OFF, beam_hours=24, mode="montecarlo", max_fault_evals=40)
    serial = BeamExperiment(KEPLER_K40C, seed=9).run(workload, **kwargs)
    parallel = BeamExperiment(KEPLER_K40C, seed=9, workers=2).run(workload, **kwargs)
    assert serial.tallies == parallel.tallies
    assert serial.fit_sdc == parallel.fit_sdc
    assert serial.fit_due == parallel.fit_due


def test_beam_expected_mode_bit_identical(workload):
    kwargs = dict(ecc=EccMode.ON, beam_hours=24, mode="expected", max_fault_evals=40)
    serial = BeamExperiment(KEPLER_K40C, seed=2).run(workload, **kwargs)
    parallel = BeamExperiment(KEPLER_K40C, seed=2, workers=2).run(workload, **kwargs)
    assert serial.tallies == parallel.tallies
    assert serial.fit_sdc == parallel.fit_sdc


def test_memory_avf_bit_identical_across_worker_counts(workload):
    serial = measure_memory_avf(KEPLER_K40C, workload, strikes=12, seed=4)
    parallel = measure_memory_avf(KEPLER_K40C, workload, strikes=12, seed=4, workers=2)
    assert serial == parallel


# -- observability hook -----------------------------------------------------------


def test_on_result_called_once_per_injection(workload):
    seen = []
    result = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=1).run(
        workload, 12, on_result=seen.append
    )
    assert len(seen) == 12
    assert seen == result.records


def test_progress_meter_counts_and_reports():
    now = [0.0]
    stream = io.StringIO()
    meter = ProgressMeter(total=10, label="evals", interval=5.0, stream=stream, clock=lambda: now[0])
    for _ in range(4):
        meter(None)
        now[0] += 1.0
    assert meter.count == 4
    assert meter.rate == pytest.approx(4 / 4.0)
    assert meter.eta_seconds == pytest.approx(6 / meter.rate)
    meter.finish()
    out = stream.getvalue()
    assert "evals: 4/10" in out


def test_progress_meter_respects_interval():
    now = [0.0]
    stream = io.StringIO()
    meter = ProgressMeter(label="x", interval=100.0, stream=stream, clock=lambda: now[0])
    for _ in range(50):
        meter(None)
        now[0] += 0.01
    # only the first result crosses the (infinite) interval threshold
    assert stream.getvalue().count("\n") == 1


def test_progress_meter_zero_results_still_reports():
    """Regression: finish() on an empty run must emit the terminal line
    (it used to bail out when no result had ever arrived)."""
    stream = io.StringIO()
    meter = ProgressMeter(label="evals", stream=stream)
    meter.finish()
    assert "evals: 0 done, 0.0/s" in stream.getvalue()


def test_progress_meter_finish_is_idempotent():
    stream = io.StringIO()
    meter = ProgressMeter(label="evals", interval=1e9, stream=stream)
    meter.finish()
    meter.finish()
    meter.close()  # EventSink close also routes to finish()
    assert stream.getvalue().count("\n") == 1


def test_progress_meter_consumes_task_events():
    """As an EventSink the meter counts only ``task`` completions."""
    stream = io.StringIO()
    meter = ProgressMeter(label="evals", interval=1e9, stream=stream)
    meter.emit({"kind": "task", "name": "task"})
    meter.emit({"kind": "span_start", "name": "campaign"})
    meter.emit({"kind": "task", "name": "task"})
    assert meter.count == 2
    meter.close()
    assert "evals: 2 done" in stream.getvalue()
