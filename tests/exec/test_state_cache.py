"""Worker-side per-campaign state cache: LRU semantics.

``_STATE_CACHE`` memoizes expensive per-campaign state (golden runs,
rebuilt site groups) in each worker process.  It must behave as a true
LRU — evict the least-recently-*used* entry, not merely the oldest
insertion — so interleaved campaigns (a combined-analysis sweep
alternating between workloads) keep both working sets resident.
"""

import pytest

from repro.exec import worker
from repro.exec.worker import _STATE_CACHE, _STATE_CACHE_LIMIT, _cached_state


@pytest.fixture(autouse=True)
def isolated_cache():
    """Run each test against an empty cache; restore what was there."""
    saved = dict(_STATE_CACHE)
    _STATE_CACHE.clear()
    yield
    _STATE_CACHE.clear()
    _STATE_CACHE.update(saved)


def _fill(n, offset=0):
    for i in range(offset, offset + n):
        _cached_state(("key", i), lambda i=i: f"state-{i}")


class TestCachedState:
    def test_builds_once_and_returns_same_object(self):
        calls = []

        def build():
            calls.append(1)
            return object()

        first = _cached_state(("k",), build)
        second = _cached_state(("k",), lambda: pytest.fail("must not rebuild"))
        assert first is second
        assert calls == [1]

    def test_distinct_keys_get_distinct_state(self):
        a = _cached_state(("a",), lambda: "A")
        b = _cached_state(("b",), lambda: "B")
        assert (a, b) == ("A", "B")


class TestEvictionOrder:
    def test_overflow_evicts_the_oldest_insertion(self):
        _fill(_STATE_CACHE_LIMIT)
        _cached_state(("key", "new"), lambda: "state-new")
        assert len(_STATE_CACHE) == _STATE_CACHE_LIMIT
        assert ("key", 0) not in _STATE_CACHE           # oldest went
        assert ("key", 1) in _STATE_CACHE               # second-oldest stayed
        assert ("key", "new") in _STATE_CACHE

    def test_hit_refreshes_recency(self):
        """A cache hit must move the entry to the young end: after touching
        key 0, overflow evicts key 1 instead."""
        _fill(_STATE_CACHE_LIMIT)
        _cached_state(("key", 0), lambda: pytest.fail("hit must not rebuild"))
        _cached_state(("key", "new"), lambda: "state-new")
        assert ("key", 0) in _STATE_CACHE               # refreshed, survives
        assert ("key", 1) not in _STATE_CACHE           # now the oldest, evicted
        assert len(_STATE_CACHE) == _STATE_CACHE_LIMIT

    def test_eviction_order_is_lru_not_fifo(self):
        """Interleaved reuse keeps the working set: touch every even key,
        then overflow by half — only untouched (odd) keys are evicted."""
        _fill(_STATE_CACHE_LIMIT)
        evens = [i for i in range(_STATE_CACHE_LIMIT) if i % 2 == 0]
        odds = [i for i in range(_STATE_CACHE_LIMIT) if i % 2 == 1]
        for i in evens:
            _cached_state(("key", i), lambda: pytest.fail("hit must not rebuild"))
        _fill(len(odds), offset=_STATE_CACHE_LIMIT)
        assert all(("key", i) in _STATE_CACHE for i in evens)
        assert all(("key", i) not in _STATE_CACHE for i in odds)

    def test_never_exceeds_limit(self):
        _fill(3 * _STATE_CACHE_LIMIT)
        assert len(_STATE_CACHE) == _STATE_CACHE_LIMIT
        # the survivors are exactly the youngest LIMIT insertions
        youngest = {("key", i) for i in range(2 * _STATE_CACHE_LIMIT, 3 * _STATE_CACHE_LIMIT)}
        assert set(_STATE_CACHE) == youngest
