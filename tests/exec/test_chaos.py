"""Chaos suite: campaigns over workloads that crash, wedge, or kill their
worker must classify — never die — and stay bit-identical.

Three hostile workloads (module-level so they pickle into worker
processes) exercise the containment stack end to end:

* :class:`RecursionCrashWorkload` / :class:`MemoryCrashWorkload` — the
  golden run is healthy, but every *injected* run (``ctx.plan`` armed)
  crashes with a non-device exception.  Under ``on_crash="due"`` the
  sandbox classifies each crash as a contained DUE, identically for
  ``workers=1/2/4`` and both store backends; under ``"quarantine"`` the
  chunk goes straight to the store's quarantine without burning retries.
* :class:`KamikazeWorkload` — SIGKILLs the first worker process that
  executes it (never the parent), breaking the process pool mid-chunk.
  The engine rebuilds the pool, resubmits, and the finished campaign —
  and a subsequent resume from the store — is bit-identical to an
  undisturbed serial run.
"""

import os
import signal

import numpy as np
import pytest

import repro.api as api
from repro.arch.dtypes import DType
from repro.common.errors import ChunkQuarantinedError, InjectionCrashError
from repro.faultsim.outcomes import Outcome
from repro.sim.launch import LaunchConfig
from repro.telemetry import telemetry_session
from repro.workloads.base import Workload, WorkloadSpec

INJECTIONS = 8

#: engine/store bookkeeping; everything else must match across runs
_BOOKKEEPING = ("store.", "exec.chunk_retries", "span.checkpoint.", "service.")


def _domain(counters):
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(_BOOKKEEPING)
    }


def _signature(result):
    return [
        (r.group, r.outcome, r.op, r.bit, r.detail, r.due_cause, r.contained)
        for r in result.records
    ]


class _CrashingWorkload(Workload):
    """Healthy golden run; every armed (injected) run raises ``crash_exc``."""

    crash_exc = RuntimeError  # overridden by subclasses

    def __init__(self, seed: int = 0) -> None:
        super().__init__(
            WorkloadSpec(name=type(self).__name__, base="chaos", dtype=DType.FP32),
            seed=seed,
        )

    def _generate_inputs(self, rng) -> None:
        self.x = rng.random(32).astype(np.float32)

    def sim_launch(self) -> LaunchConfig:
        return LaunchConfig(1, 32)

    def kernel(self, ctx):
        self.prepare()
        if ctx.plan is not None:
            raise self.crash_exc("injected run wedged the interpreter")
        x = ctx.alloc("x", self.x, DType.FP32)
        out = ctx.alloc_zeros("out", (32,), DType.FP32)
        gid = ctx.global_id()
        v = ctx.ld(x, gid)
        ctx.st(out, gid, ctx.fma(v, v, v))
        return {"out": ctx.read_buffer(out)}


class RecursionCrashWorkload(_CrashingWorkload):
    crash_exc = RecursionError


class MemoryCrashWorkload(_CrashingWorkload):
    crash_exc = MemoryError


class KamikazeWorkload(Workload):
    """SIGKILLs the first *worker* process that executes it, exactly once.

    The parent pid is recorded at construction time and the kill is gated
    on an O_EXCL marker file, so the pytest process is never the victim
    and the pool loses exactly one worker.
    """

    def __init__(self, marker: str, seed: int = 0) -> None:
        super().__init__(
            WorkloadSpec(name="KAMIKAZE", base="chaos", dtype=DType.FP32), seed=seed
        )
        self.marker = marker
        self.parent_pid = os.getpid()

    def _generate_inputs(self, rng) -> None:
        self.x = rng.random(32).astype(np.float32)

    def sim_launch(self) -> LaunchConfig:
        return LaunchConfig(1, 32)

    def kernel(self, ctx):
        self.prepare()
        if os.getpid() != self.parent_pid:
            try:
                fd = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        x = ctx.alloc("x", self.x, DType.FP32)
        out = ctx.alloc_zeros("out", (32,), DType.FP32)
        gid = ctx.global_id()
        v = ctx.ld(x, gid)
        ctx.st(out, gid, ctx.add(v, v))
        return {"out": ctx.read_buffer(out)}


def _run(workload, *, workers=1, store=None, on_crash="due", retries=None):
    with telemetry_session() as telemetry:
        result = api.run_campaign(
            workload,
            device="kepler",
            injections=INJECTIONS,
            seed=1,
            workers=workers,
            store=store,
            on_crash=on_crash,
            retries=retries,
        )
        counters = dict(telemetry.registry.counters)
    return result, counters


class TestDueContainment:
    @pytest.mark.parametrize(
        "workload_cls", [RecursionCrashWorkload, MemoryCrashWorkload]
    )
    def test_every_injection_contained_as_due(self, workload_cls):
        result, counters = _run(workload_cls())
        assert result.injections == INJECTIONS
        assert result.avf(Outcome.DUE) == 1.0
        assert result.contained_count() == INJECTIONS
        cause = f"contained:{workload_cls.crash_exc.__name__}"
        assert result.due_breakdown() == {cause: INJECTIONS}
        assert counters["sandbox.contained"] == INJECTIONS
        assert counters["sandbox.contained.due"] == INJECTIONS
        assert counters[f"sandbox.cause.{workload_cls.crash_exc.__name__}"] == INJECTIONS

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_across_worker_counts(self, workers):
        serial, serial_counters = _run(RecursionCrashWorkload())
        parallel, parallel_counters = _run(RecursionCrashWorkload(), workers=workers)
        assert _signature(parallel) == _signature(serial)
        assert _domain(parallel_counters) == _domain(serial_counters)

    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    def test_bit_identical_across_store_backends(self, tmp_path, backend):
        baseline, _ = _run(MemoryCrashWorkload())
        store_path = str(tmp_path / f"chaos.{backend}")
        stored, _ = _run(MemoryCrashWorkload(), store=store_path)
        assert _signature(stored) == _signature(baseline)
        replayed, counters = _run(MemoryCrashWorkload(), store=store_path)
        assert _signature(replayed) == _signature(baseline)
        assert counters.get("store.misses", 0) == 0


class TestQuarantine:
    def test_storeless_quarantine_propagates_crash(self):
        with pytest.raises(InjectionCrashError):
            _run(RecursionCrashWorkload(), on_crash="quarantine")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_store_quarantines_without_burning_retries(self, tmp_path, workers):
        """InjectionCrashError is non_retryable: the chunk is deterministic,
        so the engine must skip the retry budget and quarantine directly."""
        store_path = str(tmp_path / "quarantine.sqlite")
        with telemetry_session() as telemetry:
            with pytest.raises(ChunkQuarantinedError):
                api.run_campaign(
                    RecursionCrashWorkload(),
                    device="kepler",
                    injections=INJECTIONS,
                    seed=1,
                    workers=workers,
                    store=store_path,
                    on_crash="quarantine",
                    retries=3,
                )
            counters = dict(telemetry.registry.counters)
        assert counters.get("exec.chunk_retries", 0) == 0

    def test_raise_policy_propagates_original(self):
        with pytest.raises(RecursionError):
            _run(RecursionCrashWorkload(), on_crash="raise")


class TestWorkerDeath:
    def test_sigkilled_worker_is_replaced_and_run_completes(self, tmp_path):
        marker = str(tmp_path / "killed")
        baseline, baseline_counters = _run(KamikazeWorkload(marker))

        store_path = str(tmp_path / "kamikaze.sqlite")
        chaos, _ = _run(KamikazeWorkload(marker), workers=2, store=store_path, retries=3)
        assert os.path.exists(marker), "the kamikaze never fired"
        assert _signature(chaos) == _signature(baseline)

        # resume from the store: pure replay, still bit-identical
        resumed, counters = _run(
            KamikazeWorkload(marker), workers=2, store=store_path, retries=3
        )
        assert _signature(resumed) == _signature(baseline)
        assert counters.get("store.misses", 0) == 0
        assert _domain(counters) == _domain(baseline_counters)
