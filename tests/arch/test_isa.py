"""ISA taxonomy: categories, unit mapping, throughputs."""

import pytest

from repro.arch.dtypes import DType
from repro.arch.isa import (
    OpCategory,
    OpClass,
    arith_op,
    categorize,
    mma_op,
    ops_for_dtype,
    unit_for,
    unit_throughput,
)
from repro.arch.units import UnitKind


class TestCategories:
    def test_fig1_buckets(self):
        assert categorize(OpClass.FFMA) is OpCategory.FMA
        assert categorize(OpClass.DMUL) is OpCategory.MUL
        assert categorize(OpClass.HADD) is OpCategory.ADD
        assert categorize(OpClass.IMAD) is OpCategory.INT
        assert categorize(OpClass.HMMA) is OpCategory.MMA
        assert categorize(OpClass.LDG) is OpCategory.LDST
        assert categorize(OpClass.MUFU) is OpCategory.OTHERS
        assert categorize(OpClass.BAR) is OpCategory.OTHERS

    def test_every_op_categorized(self):
        for op in OpClass:
            assert categorize(op) in OpCategory

    def test_arithmetic_flag(self):
        assert OpClass.FFMA.is_arithmetic
        assert OpClass.HMMA.is_arithmetic
        assert not OpClass.LDG.is_arithmetic
        assert not OpClass.SETP.is_arithmetic

    def test_memory_flag(self):
        assert OpClass.STS.is_memory
        assert not OpClass.IADD.is_memory

    def test_writes_register(self):
        assert OpClass.LDG.writes_register      # loads write GPRs
        assert OpClass.SETP.writes_register     # predicate register
        assert not OpClass.STG.writes_register
        assert not OpClass.BRA.writes_register


class TestArithResolution:
    @pytest.mark.parametrize(
        "kind,dtype,expected",
        [
            ("ADD", DType.FP16, OpClass.HADD),
            ("MUL", DType.FP32, OpClass.FMUL),
            ("FMA", DType.FP64, OpClass.DFMA),
            ("FMA", DType.INT32, OpClass.IMAD),
        ],
    )
    def test_arith_op(self, kind, dtype, expected):
        assert arith_op(kind, dtype) is expected

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            arith_op("DIV", DType.FP32)

    def test_ops_for_dtype(self):
        fp16 = ops_for_dtype(DType.FP16)
        assert OpClass.HADD in fp16 and OpClass.HMMA in fp16
        assert OpClass.FADD not in fp16

    def test_mma_op(self):
        assert mma_op(DType.FP16) is OpClass.HMMA
        assert mma_op(DType.FP32) is OpClass.FMMA
        with pytest.raises(ValueError):
            mma_op(DType.FP64)


class TestUnitMapping:
    def test_kepler_int_shares_fp32_cores(self):
        """The paper's §V-B architectural point: Kepler integers execute on
        the FP32 CUDA cores; Volta has dedicated INT32 cores."""
        assert unit_for(OpClass.IADD, "kepler") is UnitKind.FP32
        assert unit_for(OpClass.IADD, "volta") is UnitKind.INT32

    def test_fp64_units(self):
        assert unit_for(OpClass.DFMA, "kepler") is UnitKind.FP64
        assert unit_for(OpClass.DFMA, "volta") is UnitKind.FP64

    def test_tensor(self):
        assert unit_for(OpClass.HMMA, "volta") is UnitKind.TENSOR

    def test_memory_ops_on_lsu(self):
        assert unit_for(OpClass.LDG, "volta") is UnitKind.LSU
        assert unit_for(OpClass.ATOM, "kepler") is UnitKind.LSU

    def test_transcendental_on_sfu(self):
        assert unit_for(OpClass.MUFU, "kepler") is UnitKind.SFU

    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            unit_for(OpClass.FADD, "ampere")

    def test_throughputs_positive_for_used_units(self):
        for arch in ("kepler", "volta"):
            for unit in (UnitKind.FP32, UnitKind.FP64, UnitKind.LSU, UnitKind.SFU):
                assert unit_throughput(unit, arch) > 0

    def test_kepler_has_no_tensor_throughput(self):
        assert unit_throughput(UnitKind.TENSOR, "kepler") == 0.0
        assert unit_throughput(UnitKind.TENSOR, "volta") > 0
