"""Data types: widths, prefixes, NumPy mapping."""

import numpy as np
import pytest

from repro.arch.dtypes import DType, bit_width_of, dtype_of_array


class TestDType:
    @pytest.mark.parametrize(
        "dtype,bits,prefix",
        [(DType.FP16, 16, "H"), (DType.FP32, 32, "F"), (DType.FP64, 64, "D"), (DType.INT32, 32, "I")],
    )
    def test_bits_and_prefix(self, dtype, bits, prefix):
        assert dtype.bits == bits
        assert dtype.prefix == prefix
        assert dtype.bytes == bits // 8

    def test_bits_view_width_matches(self):
        for dtype in DType:
            assert dtype.np_bits_dtype.itemsize == dtype.np_dtype.itemsize

    def test_is_float(self):
        assert DType.FP16.is_float and DType.FP64.is_float
        assert not DType.INT32.is_float

    def test_from_label(self):
        assert DType.from_label("fp32") is DType.FP32
        with pytest.raises(ValueError):
            DType.from_label("fp128")

    def test_from_prefix(self):
        assert DType.from_prefix("h") is DType.FP16
        assert DType.from_prefix("D") is DType.FP64
        with pytest.raises(ValueError):
            DType.from_prefix("Q")


class TestArrayHelpers:
    def test_bit_width_of(self):
        assert bit_width_of(np.zeros(3, dtype=np.float16)) == 16
        assert bit_width_of(np.zeros(3, dtype=np.float64)) == 64

    def test_dtype_of_array_round_trip(self):
        for dtype in DType:
            arr = np.zeros(2, dtype=dtype.np_dtype)
            assert dtype_of_array(arr) is dtype

    def test_dtype_of_array_unknown(self):
        with pytest.raises(ValueError):
            dtype_of_array(np.zeros(2, dtype=np.complex64))
