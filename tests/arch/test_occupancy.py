"""CUDA-style occupancy model: limiters and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.occupancy import occupancy
from repro.common.errors import ConfigurationError


class TestLimiters:
    def test_warp_limited_full_occupancy(self):
        occ = occupancy(KEPLER_K40C, 256, 32, 0, grid_blocks=10000)
        assert occ.limiter == "warps"
        assert occ.theoretical == pytest.approx(1.0)
        assert occ.achieved == pytest.approx(1.0)

    def test_register_limited(self):
        """255 registers/thread force one 256-thread block per SM — the RF
        micro-benchmark's design (§V-A)."""
        occ = occupancy(KEPLER_K40C, 256, 255, 0, grid_blocks=10000)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 1
        assert occ.theoretical == pytest.approx(8 / 64)

    def test_shared_limited(self):
        occ = occupancy(KEPLER_K40C, 64, 16, 24 * 1024, grid_blocks=10000)
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == 2

    def test_grid_limited(self):
        occ = occupancy(KEPLER_K40C, 256, 32, 0, grid_blocks=15)
        assert occ.limiter == "grid"
        assert occ.achieved < 0.2

    def test_block_count_limited(self):
        occ = occupancy(KEPLER_K40C, 32, 16, 0, grid_blocks=10000)
        assert occ.limiter == "blocks"
        assert occ.blocks_per_sm == KEPLER_K40C.max_blocks_per_sm


class TestActivity:
    def test_activity_factor_scales_achieved(self):
        full = occupancy(VOLTA_V100, 256, 32, 0, 10000, activity_factor=1.0)
        half = occupancy(VOLTA_V100, 256, 32, 0, 10000, activity_factor=0.5)
        assert half.achieved == pytest.approx(full.achieved * 0.5)
        assert half.theoretical == full.theoretical

    def test_bad_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            occupancy(VOLTA_V100, 256, 32, 0, 100, activity_factor=0.0)


class TestValidation:
    def test_zero_threads(self):
        with pytest.raises(ConfigurationError):
            occupancy(KEPLER_K40C, 0, 32, 0, 1)

    def test_too_many_threads(self):
        with pytest.raises(ConfigurationError):
            occupancy(KEPLER_K40C, 2048, 32, 0, 1)

    def test_too_many_registers(self):
        with pytest.raises(ConfigurationError):
            occupancy(KEPLER_K40C, 128, 300, 0, 1)

    def test_shared_over_capacity(self):
        with pytest.raises(ConfigurationError):
            occupancy(KEPLER_K40C, 128, 32, 128 * 1024, 1)

    def test_block_cannot_fit(self):
        # 1024 threads × 255 regs > 64K registers per SM
        with pytest.raises(ConfigurationError):
            occupancy(KEPLER_K40C, 1024, 255, 0, 1)


class TestInvariants:
    @given(
        threads=st.sampled_from([32, 64, 128, 256, 512, 1024]),
        regs=st.integers(min_value=16, max_value=64),
        shared=st.sampled_from([0, 1024, 8192, 32768]),
        grid=st.integers(min_value=1, max_value=100000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, threads, regs, shared, grid):
        occ = occupancy(VOLTA_V100, threads, regs, shared, grid)
        assert 0.0 < occ.theoretical <= 1.0
        assert 0.0 <= occ.achieved <= occ.theoretical + 1e-9
        assert occ.blocks_per_sm >= 1

    @given(grid=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_grid(self, grid):
        small = occupancy(VOLTA_V100, 256, 32, 0, grid)
        large = occupancy(VOLTA_V100, 256, 32, 0, grid + 80)
        assert large.achieved >= small.achieved - 1e-9
