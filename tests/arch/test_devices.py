"""Device catalog: K40c / V100 specs and derived quantities."""

import dataclasses

import pytest

from repro.arch.devices import DEVICES, KEPLER_K40C, VOLTA_TITAN_V, VOLTA_V100, get_device
from repro.arch.units import UnitKind
from repro.common.errors import ConfigurationError


class TestCatalog:
    def test_lookup_case_insensitive(self):
        assert get_device("K40C") is KEPLER_K40C
        assert get_device("v100") is VOLTA_V100

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device("a100")

    def test_catalog_complete(self):
        assert set(DEVICES) == {"k40c", "v100", "titanv"}


class TestK40c:
    def test_paper_core_counts(self):
        """15 SMX × 192 CUDA cores = 2,880 (paper §III-A)."""
        assert KEPLER_K40C.sm_count == 15
        assert KEPLER_K40C.unit_count(UnitKind.FP32) == 2880

    def test_process_node(self):
        assert KEPLER_K40C.process_node_nm == 28

    def test_dual_issue_width(self):
        """4 schedulers × 2 instructions (paper §IV-B)."""
        assert KEPLER_K40C.issue_width_per_sm == 8

    def test_no_tensor_cores(self):
        assert not KEPLER_K40C.has_tensor_cores
        assert KEPLER_K40C.unit_count(UnitKind.TENSOR) == 0

    def test_register_file_size(self):
        assert KEPLER_K40C.register_file_bytes_per_sm == 256 * 1024


class TestV100:
    def test_paper_unit_mix(self):
        """Each Volta SM: 64 FP32 + 64 INT32 + 32 FP64 + 8 tensor cores."""
        per_sm = VOLTA_V100.units_per_sm
        assert per_sm[UnitKind.FP32] == 64
        assert per_sm[UnitKind.INT32] == 64
        assert per_sm[UnitKind.FP64] == 32
        assert per_sm[UnitKind.TENSOR] == 8

    def test_80_sms(self):
        assert VOLTA_V100.sm_count == 80

    def test_process_node(self):
        assert VOLTA_V100.process_node_nm == 16

    def test_tensor_cores(self):
        assert VOLTA_V100.has_tensor_cores
        assert VOLTA_V100.unit_count(UnitKind.TENSOR) == 640

    def test_titan_v_lacks_ecc(self):
        assert not VOLTA_TITAN_V.ecc_capable
        assert VOLTA_V100.ecc_capable


class TestDerived:
    def test_storage_bits(self):
        assert KEPLER_K40C.storage_bits(UnitKind.REGISTER_FILE) == 15 * 65536 * 32
        assert VOLTA_V100.storage_bits(UnitKind.L2_CACHE) == 6 * 1024**2 * 8

    def test_storage_bits_rejects_functional_unit(self):
        with pytest.raises(ConfigurationError):
            KEPLER_K40C.storage_bits(UnitKind.FP32)

    def test_total_threads(self):
        assert KEPLER_K40C.max_threads_per_sm == 2048
        assert VOLTA_V100.total_threads == 80 * 2048

    def test_validation_rejects_bad_arch(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(KEPLER_K40C, architecture="pascal")

    def test_validation_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(KEPLER_K40C, sm_count=0)
