"""SECDED model: corrections, detections, MBU statistics."""

import numpy as np
import pytest

from repro.arch.ecc import DEFAULT_MBU_PROBABILITY, EccMode, EccOutcome, SecdedModel


class TestClassify:
    def test_ecc_off_delivers_everything(self):
        model = SecdedModel(mode=EccMode.OFF)
        assert model.classify(1) is EccOutcome.DELIVERED
        assert model.classify(2) is EccOutcome.DELIVERED

    def test_ecc_on_corrects_single(self):
        model = SecdedModel(mode=EccMode.ON)
        assert model.classify(1) is EccOutcome.CORRECTED

    def test_ecc_on_detects_multi(self):
        model = SecdedModel(mode=EccMode.ON)
        assert model.classify(2) is EccOutcome.DETECTED_DUE
        assert model.classify(3) is EccOutcome.DETECTED_DUE

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            SecdedModel(mode=EccMode.ON).classify(0)

    def test_bad_mbu_probability(self):
        with pytest.raises(ValueError):
            SecdedModel(mode=EccMode.ON, mbu_probability=1.5)


class TestSampling:
    def test_mbu_rate_matches_paper_2_percent(self):
        """§V-A anticipates ~2% MBUs; the sampler must reproduce it."""
        model = SecdedModel(mode=EccMode.ON)
        rng = np.random.default_rng(0)
        n = 20000
        multi = sum(1 for _ in range(n) if model.sample_bits_upset(rng) == 2)
        assert multi / n == pytest.approx(DEFAULT_MBU_PROBABILITY, abs=0.005)

    def test_strike_distribution_ecc_on(self):
        model = SecdedModel(mode=EccMode.ON)
        rng = np.random.default_rng(1)
        outcomes = [model.strike(rng) for _ in range(5000)]
        due_rate = outcomes.count(EccOutcome.DETECTED_DUE) / len(outcomes)
        assert due_rate == pytest.approx(DEFAULT_MBU_PROBABILITY, abs=0.01)
        assert EccOutcome.DELIVERED not in outcomes

    def test_strike_distribution_ecc_off(self):
        model = SecdedModel(mode=EccMode.OFF)
        rng = np.random.default_rng(2)
        outcomes = {model.strike(rng) for _ in range(100)}
        assert outcomes == {EccOutcome.DELIVERED}


class TestMode:
    def test_from_flag(self):
        assert EccMode.from_flag(True) is EccMode.ON
        assert EccMode.from_flag(False) is EccMode.OFF

    def test_enabled_property(self):
        assert SecdedModel(mode=EccMode.ON).enabled
        assert not SecdedModel(mode=EccMode.OFF).enabled
