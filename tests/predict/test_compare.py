"""Figure 6 comparison machinery."""

import math

import pytest

from repro.arch.ecc import EccMode
from repro.common.errors import ConfigurationError
from repro.common.stats import Estimate
from repro.beam.experiment import BeamResult
from repro.predict.compare import (
    ComparisonRow,
    average_ratio,
    compare_code,
    due_underestimation,
    fraction_within,
    worst_overprediction,
)
from repro.predict.model import FitPrediction


def _row(measured, predicted, code="X"):
    from repro.common.stats import signed_ratio

    return ComparisonRow(
        code=code, device="D", ecc="on", framework="F",
        beam_fit=measured, predicted_fit=predicted, ratio=signed_ratio(measured, predicted),
    )


def _beam_result(sdc=10.0, due=2.0):
    est = lambda v: Estimate(v, v * 0.8, v * 1.2)
    return BeamResult(
        workload="W", device="D", ecc=EccMode.ON, beam_hours=72.0,
        fluence_n_cm2=1e12, fit_sdc=est(sdc), fit_due=est(due),
    )


def _prediction(sdc=5.0, due=0.01):
    pred = FitPrediction(workload="W", device="D", ecc=EccMode.ON)
    pred.fit_sdc = sdc
    pred.fit_due = due
    return pred


class TestCompareCode:
    def test_sdc_metric(self):
        row = compare_code(_beam_result(), _prediction(), "NVBITFI", metric="sdc")
        assert row.beam_fit == 10.0
        assert row.ratio == pytest.approx(2.0)
        assert row.underpredicted

    def test_due_metric(self):
        row = compare_code(_beam_result(), _prediction(), "NVBITFI", metric="due")
        assert row.ratio == pytest.approx(200.0)

    def test_due_total_metric_narrows_the_ratio(self):
        """Adding the uncore FIT term can only grow the predicted DUE, so
        the two-term ratio is strictly below the core-only §VII-B one."""
        pred = _prediction()
        pred.fit_due_uncore = 0.99
        core = compare_code(_beam_result(), pred, "NVBITFI", metric="due")
        total = compare_code(_beam_result(), pred, "NVBITFI", metric="due_total")
        assert total.predicted_fit == pytest.approx(1.0)
        assert total.ratio == pytest.approx(2.0)
        assert total.ratio < core.ratio

    def test_due_total_bounds_a_zero_core_prediction(self):
        """A code whose injectable-site DUE prediction is exactly zero is
        unbounded under metric="due" but finite under the two-term model."""
        pred = _prediction(due=0.0)
        pred.fit_due_uncore = 0.5
        total = compare_code(_beam_result(), pred, "NVBITFI", metric="due_total")
        assert total.predicted_fit == pytest.approx(0.5)
        assert math.isfinite(total.ratio)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            compare_code(_beam_result(), _prediction(), "F", metric="avf")

    def test_overprediction_negative(self):
        row = compare_code(_beam_result(sdc=1.0), _prediction(sdc=5.0), "F")
        assert row.ratio == pytest.approx(-5.0)
        assert not row.underpredicted
        assert row.within == pytest.approx(5.0)


class TestAverages:
    def test_average_of_balanced_panel_near_one(self):
        rows = [_row(10, 5), _row(5, 10)]
        assert abs(average_ratio(rows)) == pytest.approx(1.0)

    def test_average_skips_degenerate(self):
        rows = [_row(10, 5), _row(1.0, 0.0)]
        assert average_ratio(rows) == pytest.approx(2.0)

    def test_average_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_ratio([_row(1.0, 0.0)])

    def test_fraction_within(self):
        rows = [_row(10, 5), _row(10, 1), _row(3, 3)]
        assert fraction_within(rows, factor=5.0) == pytest.approx(2 / 3)

    def test_fraction_within_empty(self):
        with pytest.raises(ConfigurationError):
            fraction_within([])


class TestDueUnderestimation:
    def test_mean_of_ratios(self):
        rows = [_row(100, 1), _row(300, 1)]
        assert due_underestimation(rows) == pytest.approx(200.0)

    def test_zero_predictions_excluded(self):
        rows = [_row(100, 1), _row(50, 0.0)]
        assert due_underestimation(rows) == pytest.approx(100.0)

    def test_all_zero_predictions_is_inf(self):
        assert math.isinf(due_underestimation([_row(50, 0.0)]))


class TestWorstOverprediction:
    def test_finds_most_negative(self):
        rows = [_row(10, 5, "a"), _row(1, 27, "hhotspot"), _row(1, 3, "c")]
        worst = worst_overprediction(rows)
        assert worst.code == "hhotspot"
        assert worst.ratio == pytest.approx(-27.0)

    def test_none_when_all_underpredicted(self):
        assert worst_overprediction([_row(10, 5)]) is None
