"""Eq. 1–4 prediction model: mapping, AVF aggregation, term structure."""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.arch.isa import OpCategory, OpClass
from repro.faultsim.outcomes import CampaignResult, InjectionRecord, Outcome
from repro.predict.model import (
    FitPrediction,
    PredictionModel,
    UnitFit,
    avf_by_category,
    measure_memory_avf,
    measure_microbench_fits,
    ubench_key,
    uncore_due_fits,
)
from repro.profiling.profiler import profile_workload
from repro.workloads.registry import get_workload


class TestUbenchKey:
    def test_direct_arithmetic(self):
        assert ubench_key(OpClass.FFMA) == "FFMA"
        assert ubench_key(OpClass.HMMA) == "HMMA"
        assert ubench_key(OpClass.IMAD) == "IMAD"

    def test_misc_int_maps_to_iadd(self):
        assert ubench_key(OpClass.LOP) == "IADD"
        assert ubench_key(OpClass.IMNMX) == "IADD"

    def test_memory_maps_to_ldst(self):
        for op in (OpClass.LDG, OpClass.STG, OpClass.LDS, OpClass.STS):
            assert ubench_key(op) == "LDST"

    def test_others_unmodeled(self):
        """The paper models only the common instruction classes; OTHERS are
        structurally absent from the prediction (§VII-A)."""
        for op in (OpClass.MUFU, OpClass.SETP, OpClass.BRA, OpClass.BAR, OpClass.MOV):
            assert ubench_key(op) is None


class TestAvfByCategory:
    def _campaign(self):
        c = CampaignResult("W", "F", "D")
        for _ in range(6):
            c.add(InjectionRecord("g", Outcome.SDC, op=OpClass.FFMA))
        for _ in range(4):
            c.add(InjectionRecord("g", Outcome.MASKED, op=OpClass.FFMA))
        for _ in range(3):
            c.add(InjectionRecord("g", Outcome.DUE, op=OpClass.IADD))
        c.add(InjectionRecord("g", Outcome.SDC, op=OpClass.LDG))
        return c

    def test_category_aggregation(self):
        avf = avf_by_category(self._campaign(), Outcome.SDC, min_samples=1)
        assert avf[OpCategory.FMA] == pytest.approx(0.6)
        assert avf[OpCategory.INT] == 0.0

    def test_min_samples_filters(self):
        avf = avf_by_category(self._campaign(), Outcome.SDC, min_samples=5)
        assert OpCategory.LDST not in avf
        assert OpCategory.FMA in avf


@pytest.fixture(scope="module")
def kepler_fits():
    return measure_microbench_fits(KEPLER_K40C, seed=0, max_fault_evals=60)


class TestMicrobenchFits:
    def test_all_kepler_units_measured(self, kepler_fits):
        assert set(kepler_fits.units) == {"FADD", "FMUL", "FFMA", "IADD", "IMUL", "IMAD", "LDST"}

    def test_rf_per_bit_positive(self, kepler_fits):
        assert kepler_fits.rf_fit_per_bit_sdc > 0

    def test_unit_fit_de_embedding(self):
        unit = UnitFit(fit_sdc=10.0, fit_due=1.0, denom_sdc=0.5, denom_due=0.1)
        assert unit.unit_sdc == pytest.approx(20.0)
        assert unit.unit_due == pytest.approx(10.0)

    def test_denominator_floor(self):
        unit = UnitFit(fit_sdc=10.0, fit_due=1.0, denom_sdc=0.0, denom_due=0.0)
        assert unit.unit_sdc < float("inf")

    def test_missing_unit_rejected(self, kepler_fits):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            kepler_fits.unit_for("HMMA")  # no tensor cores on Kepler


class TestPrediction:
    def _predict(self, kepler_fits, ecc, avf=0.5, mem_avf=(0.3, 0.1)):
        w = get_workload("kepler", "FMXM", seed=1)
        metrics = profile_workload(KEPLER_K40C, w)
        cats = {c: avf for c in OpCategory}
        model = PredictionModel(KEPLER_K40C, kepler_fits)
        return model.predict(w, metrics, cats, {c: 0.1 for c in OpCategory}, ecc=ecc, mem_avf=mem_avf)

    def test_terms_cover_main_mix(self, kepler_fits):
        pred = self._predict(kepler_fits, EccMode.ON)
        assert pred.covered_fraction > 0.5  # paper: >70% of instructions
        assert "FFMA" in pred.terms_sdc
        assert pred.fit_sdc == pytest.approx(sum(pred.terms_sdc.values()))

    def test_zero_avf_zero_prediction(self, kepler_fits):
        pred = self._predict(kepler_fits, EccMode.ON, avf=0.0)
        assert pred.fit_sdc == 0.0

    def test_prediction_linear_in_avf(self, kepler_fits):
        lo = self._predict(kepler_fits, EccMode.ON, avf=0.25)
        hi = self._predict(kepler_fits, EccMode.ON, avf=0.5)
        assert hi.fit_sdc == pytest.approx(2 * lo.fit_sdc, rel=1e-6)

    def test_memory_term_only_when_ecc_off(self, kepler_fits):
        """Eq. 3: with ECC enabled AVF_MEM ≈ 0 and the memory summation
        vanishes (§IV-A)."""
        on = self._predict(kepler_fits, EccMode.ON)
        off = self._predict(kepler_fits, EccMode.OFF)
        assert not any(k.startswith("mem:") for k in on.terms_sdc)
        assert any(k.startswith("mem:") for k in off.terms_sdc)
        assert off.fit_sdc > on.fit_sdc

    def test_memory_footprint_bits(self, kepler_fits):
        model = PredictionModel(KEPLER_K40C, kepler_fits)
        bits = model.memory_footprint_bits(get_workload("kepler", "FMXM", seed=1))
        assert bits["register_file"] > 0
        assert bits["register_file"] <= KEPLER_K40C.register_file_bytes * 8


class TestUncoreDueTerm:
    """The second term of the two-term DUE model (uncore FIT)."""

    def test_fit_due_total_is_the_two_term_sum(self):
        pred = FitPrediction(workload="W", device="D", ecc=EccMode.ON)
        pred.fit_due = 0.25
        pred.fit_due_uncore = 0.5
        assert pred.fit_due_total == pytest.approx(0.75)

    def test_uncore_due_fits_cover_all_hidden_units(self):
        terms = uncore_due_fits(KEPLER_K40C, get_workload("kepler", "FMXM", seed=1))
        assert set(terms) == {
            "uncore:scheduler",
            "uncore:ipipe",
            "uncore:memctl",
            "uncore:host_if",
        }
        # every uncore unit is live on a real workload, so the term is
        # strictly positive — the core-only prediction can never be the
        # §VII-B zero/underestimate once it is added
        assert all(value > 0 for value in terms.values())

    def test_predict_populates_the_uncore_term(self, kepler_fits):
        w = get_workload("kepler", "FMXM", seed=1)
        metrics = profile_workload(KEPLER_K40C, w)
        cats = {c: 0.5 for c in OpCategory}
        model = PredictionModel(KEPLER_K40C, kepler_fits)
        pred = model.predict(w, metrics, cats, {c: 0.1 for c in OpCategory}, ecc=EccMode.ON)
        assert pred.terms_due_uncore == uncore_due_fits(KEPLER_K40C, w)
        assert pred.fit_due_uncore == pytest.approx(sum(pred.terms_due_uncore.values()))
        assert pred.fit_due_total > pred.fit_due


class TestMemoryAvf:
    def test_returns_probabilities(self):
        sdc, due = measure_memory_avf(KEPLER_K40C, get_workload("kepler", "FMXM", seed=1), strikes=16)
        assert 0.0 <= sdc <= 1.0
        assert 0.0 <= due <= 1.0
        assert sdc + due <= 1.0

    def test_mxm_memory_faults_propagate(self):
        """Matrix inputs are all live: a fair share of delivered memory
        strikes must corrupt the product."""
        sdc, _ = measure_memory_avf(KEPLER_K40C, get_workload("kepler", "FMXM", seed=1), strikes=30)
        assert sdc > 0.1

    def test_zero_strikes_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            measure_memory_avf(KEPLER_K40C, get_workload("kepler", "FMXM"), strikes=0)
