"""Codec round-trips for every stored result type (the resume contract),
plus the PR-5 salt bump that keeps stale chunks from replaying.

The store's payloads must round-trip *exactly*: a replayed chunk has to be
indistinguishable from a re-executed one.  InjectionRecord gained
``contained`` and chunk results gained :class:`StrikeEval` when the
injection sandbox landed; the fingerprint salt moved to ``repro-store/2``
at the same time so chunks written by the previous schema never replay
into the new one.
"""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.isa import OpClass
from repro.exec.tasks import CampaignContext, InjectionTask, WorkloadHandle
from repro.faultsim.frameworks import NvBitFi
from repro.faultsim.outcomes import InjectionRecord, Outcome, StrikeEval
from repro.store.codec import decode_results, decode_value, encode_results, encode_value
from repro.store.fingerprint import STORE_SALT, chunk_fingerprint
from repro.workloads.registry import get_workload


class TestRoundTrips:
    def test_outcome(self):
        for outcome in Outcome:
            assert decode_value(encode_value(outcome)) is outcome

    @pytest.mark.parametrize(
        "record",
        [
            InjectionRecord(group="gpr_output", outcome=Outcome.SDC, op=OpClass.FFMA, bit=17),
            InjectionRecord(group="address", outcome=Outcome.DUE, due_cause="illegal_address"),
            InjectionRecord(
                group="gpr_output",
                outcome=Outcome.DUE,
                due_cause="contained:RecursionError",
                contained=True,
            ),
            InjectionRecord(
                group="uncore:scheduler", outcome=Outcome.DUE, due_cause="scheduler_hang"
            ),
        ],
    )
    def test_injection_record(self, record):
        assert decode_value(encode_value(record)) == record

    @pytest.mark.parametrize(
        "evaluation",
        [
            StrikeEval(outcome=Outcome.MASKED),
            StrikeEval(outcome=Outcome.SDC),
            StrikeEval(outcome=Outcome.DUE, due_cause="ecc_dbe"),
            StrikeEval(outcome=Outcome.DUE, due_cause="contained:MemoryError", contained=True),
        ],
    )
    def test_strike_eval(self, evaluation):
        encoded = encode_value(evaluation)
        assert encoded["t"] == "strike_eval"
        assert decode_value(encoded) == evaluation

    def test_strike_eval_is_json_greppable(self):
        encoded = encode_value(StrikeEval(outcome=Outcome.DUE, due_cause="scheduler_hang"))
        # explicit JSON encoding, not the opaque pickle fallback
        assert encoded == {
            "t": "strike_eval",
            "outcome": "due",
            "due_cause": "scheduler_hang",
            "contained": False,
        }

    def test_mixed_sequence(self):
        values = [
            Outcome.MASKED,
            InjectionRecord(group="address", outcome=Outcome.DUE, due_cause="watchdog"),
            StrikeEval(outcome=Outcome.SDC),
            42,
            None,
            {"free": "form"},  # exercises the pickle fallback
        ]
        assert decode_results(encode_results(values)) == values

    def test_pre_contained_payload_decodes(self):
        """A record written before the ``contained`` field existed (or by a
        hand-edited store) still decodes, defaulting to not-contained."""
        legacy = {
            "t": "injection_record",
            "group": "address",
            "outcome": "due",
            "op": None,
            "bit": -1,
            "detail": "",
            "due_cause": "illegal_address",
        }
        record = decode_value(legacy)
        assert record.contained is False
        assert record.due_cause == "illegal_address"


class TestSaltBump:
    def test_salt_is_v5(self):
        """The salt moved with the schema: the store grew the campaign
        service's coordination record kinds (lease / heartbeat / tombstone
        / campaign registry rows) and chunk records gained lease
        provenance in their meta, so service-era stores must never be
        silently resumed by pre-service code that would misread (or
        clobber) the coordination rows."""
        assert STORE_SALT == "repro-store/5"

    def test_old_fingerprints_never_match(self):
        """Exactly the same chunk fingerprinted under a previous salt
        yields a different key, so an old store reads as all-misses."""
        context = CampaignContext(
            device=KEPLER_K40C,
            framework=NvBitFi(),
            ecc="on",
            root_seed=0,
            workload=WorkloadHandle.wrap(get_workload("kepler", "FMXM", seed=0)),
        )
        tasks = [
            InjectionTask(
                index=0, group="gpr_output", target_index=0, root_seed=0,
                rng_path=("campaign", "task", 0),
            )
        ]
        current = chunk_fingerprint(context, tasks)
        v1 = chunk_fingerprint(context, tasks, salt="repro-store/1")
        assert current != v1

    def test_on_crash_enters_fingerprint(self):
        """on_crash changes how crashing runs classify, so it must key the
        cache: the same tasks under a different policy are different chunks."""
        workload = WorkloadHandle.wrap(get_workload("kepler", "FMXM", seed=0))
        tasks = [
            InjectionTask(
                index=0, group="gpr_output", target_index=0, root_seed=0,
                rng_path=("campaign", "task", 0),
            )
        ]
        fingerprints = {
            chunk_fingerprint(
                CampaignContext(
                    device=KEPLER_K40C, framework=NvBitFi(), ecc="on", root_seed=0,
                    workload=workload, on_crash=policy,
                ),
                tasks,
            )
            for policy in ("due", "quarantine", "raise")
        }
        assert len(fingerprints) == 3
