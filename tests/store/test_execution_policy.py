"""ExecutionPolicy: the one run-shaping object, plus the kwarg shim.

The former ``store=/resume=/refresh=/retries=/backoff=/on_crash=`` kwarg
sprawl on ``run_campaign``/``run_beam``/``CampaignRunner``/
``BeamExperiment``/``ExperimentConfig`` collapsed into one
``policy=ExecutionPolicy(...)``.  These tests pin the migration contract:

* old kwargs keep working — a one-shot ``DeprecationWarning`` per
  (surface, kwarg), never an error, results unchanged;
* ``policy=`` and the old kwargs together are a configuration error;
* the new execution-strategy fields validate (``snapshots_per_run >= 1``)
  and round-trip through :func:`as_execution_policy`;
* replay sessions persist into the content-addressed store and are
  imported (not re-captured) by a later run against the same store.
"""

import warnings

import pytest

import repro.store.policy as policy_mod
from repro.api import ExecutionPolicy, get_workload, predict, run_campaign
from repro.arch.devices import KEPLER_K40C
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.session import ExperimentSession
from repro.faultsim.campaign import CampaignRunner
from repro.faultsim.frameworks import NvBitFi
from repro.store import RunPolicy, open_store
from repro.store.policy import as_execution_policy, replay_setting, snapshots_setting


@pytest.fixture(autouse=True)
def _reset_warned():
    """Make the one-shot warning observable in every test of this module."""
    saved = set(policy_mod._WARNED)
    policy_mod._WARNED.clear()
    yield
    policy_mod._WARNED.clear()
    policy_mod._WARNED.update(saved)


class TestExecutionPolicy:
    def test_extends_run_policy(self):
        policy = ExecutionPolicy(retries=1, replay=False, snapshots_per_run=4)
        assert isinstance(policy, RunPolicy)
        assert policy.retries == 1
        assert not replay_setting(policy)
        assert snapshots_setting(policy) == 4

    def test_replay_defaults_to_auto(self):
        assert ExecutionPolicy().replay is None
        assert replay_setting(ExecutionPolicy())
        assert replay_setting(None)  # no policy at all: replay is still on
        assert replay_setting(RunPolicy())  # plain RunPolicy: auto too
        assert snapshots_setting(None) == 16

    def test_snapshots_per_run_validates(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(snapshots_per_run=0)

    def test_as_execution_policy_preserves_and_overrides(self):
        base = RunPolicy(retries=7, on_crash="raise")
        folded = as_execution_policy(base, replay=False, snapshots_per_run=3)
        assert folded.retries == 7
        assert folded.on_crash == "raise"
        assert folded.replay is False
        assert folded.snapshots_per_run == 3
        override = as_execution_policy(folded, on_crash="due")
        assert override.on_crash == "due"
        assert override.replay is False


class TestKwargShim:
    def test_legacy_kwarg_warns_once_and_still_works(self, tmp_path):
        workload = get_workload("kepler", "FMXM", seed=0)
        store_path = str(tmp_path / "shim.sqlite")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = run_campaign(
                workload, device="k40c", injections=6, seed=0, store=store_path
            )
            second = run_campaign(
                workload, device="k40c", injections=6, seed=0, store=store_path
            )
        shim = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(shim) == 1  # once per (surface, kwarg), not per call
        assert "policy=ExecutionPolicy(store=...)" in str(shim[0].message)
        assert [r.outcome for r in first.records] == [r.outcome for r in second.records]

    def test_each_surface_warns_independently(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CampaignRunner(
                KEPLER_K40C, NvBitFi(), retries=1
            )
            ExperimentConfig(retries=1)
        owners = sorted(
            str(w.message).split("(")[0]
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        )
        assert owners == ["CampaignRunner", "ExperimentConfig"]

    def test_policy_plus_legacy_kwargs_raise(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignRunner(
                KEPLER_K40C,
                NvBitFi(),
                policy=ExecutionPolicy(),
                store=str(tmp_path / "x.sqlite"),
            )

    def test_experiment_config_policy_is_exclusive(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(policy=ExecutionPolicy(), retries=2)

    def test_experiment_config_accepts_policy(self):
        config = ExperimentConfig(policy=ExecutionPolicy(on_crash="quarantine"))
        session = ExperimentSession(config)
        assert session.policy.on_crash == "quarantine"

    def test_session_folds_on_crash_into_policy(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = ExperimentSession(ExperimentConfig(on_crash="raise"))
        assert session.policy.on_crash == "raise"
        # the fold happens before any engine is built: only the config's own
        # shim warning fired, no engine-level ones
        owners = {
            str(w.message).split("(")[0]
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        }
        assert owners == {"ExperimentConfig"}

    def test_predict_rejects_policy_with_session(self):
        with pytest.raises(ConfigurationError):
            predict("FMXM", session=ExperimentSession(), policy=ExecutionPolicy())


class TestReplaySessionPersistence:
    def test_session_snapshot_round_trips_through_store(self, tmp_path):
        workload = get_workload("kepler", "FMXM", seed=4)
        store_path = str(tmp_path / "replay.sqlite")

        cold_policy = ExecutionPolicy(store=open_store(store_path))
        runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=4, policy=cold_policy)
        cold = runner.run(workload, 10)

        backend = cold_policy.store.backend
        kinds = [backend.get(fp).kind for fp in backend.fingerprints()]
        assert kinds.count("replay_session") == 1

        warm_policy = ExecutionPolicy(store=open_store(store_path))
        warm_runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=4, policy=warm_policy)
        warm = warm_runner.run(workload, 10)

        assert [r.outcome for r in warm.records] == [r.outcome for r in cold.records]
        # the warm runner imported the session instead of re-capturing it
        imported = list(warm_runner._sessions.values())
        assert imported and all(s.stats["captures"] == 0 for s in imported)
        assert all(s.export_state() is not None for s in imported)
