"""Crash tolerance: per-chunk retry with backoff, poison-chunk quarantine,
and process-pool rebuild after a worker crash.

The chunk functions live at module level so the process executor can pickle
them by reference; cross-process "flakiness" is coordinated through marker
files in a directory carried by the (picklable, fingerprintable) context.
"""

import os
import pathlib
from dataclasses import dataclass

import pytest

from repro.common.errors import ChunkQuarantinedError, ConfigurationError
from repro.exec.engine import ProcessExecutor, SerialExecutor
from repro.store import QUARANTINED, RunPolicy, open_store, resolve_policy
from repro.telemetry import telemetry_session


@dataclass(frozen=True)
class MarkerContext:
    """Tiny picklable context: a scratch dir + a salt for fingerprints."""

    marker_dir: str
    salt: int = 0


def _marker(context, chunk):
    return pathlib.Path(context.marker_dir) / f"chunk-{chunk[0]}.attempted"


def flaky_chunk(context, chunk):
    """Fails the first time each chunk is seen, succeeds on retry."""
    marker = _marker(context, chunk)
    if not marker.exists():
        marker.write_text("1")
        raise RuntimeError(f"transient failure on {chunk}")
    return [x * 10 for x in chunk]


def poison_chunk(context, chunk):
    if 3 in chunk:
        raise RuntimeError("permanently poisoned")
    return [x * 10 for x in chunk]


def crashing_chunk(context, chunk):
    """First attempt per chunk kills the worker process outright."""
    marker = _marker(context, chunk)
    if not marker.exists():
        marker.write_text("1")
        os._exit(1)
    return [x * 10 for x in chunk]


def well_behaved_chunk(context, chunk):
    return [x * 10 for x in chunk]


TASKS = list(range(12))
EXPECTED = [x * 10 for x in TASKS]


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RunPolicy(retries=-1)
    with pytest.raises(ConfigurationError):
        RunPolicy(backoff=-0.5)
    with pytest.raises(ConfigurationError, match="not both"):
        resolve_policy(store=None, policy=RunPolicy(), retries=3)
    # retry-only policy: no store, still retries
    policy = resolve_policy(retries=2, backoff=0.0)
    assert policy.store is None and policy.retries == 2
    assert not policy.read_allowed and not policy.write_allowed
    assert resolve_policy() is None


def test_serial_retry_recovers_and_counts(tmp_path):
    context = MarkerContext(str(tmp_path))
    policy = RunPolicy(retries=2, backoff=0.0)
    with telemetry_session() as telemetry:
        results = SerialExecutor().run_chunks(flaky_chunk, context, TASKS, policy=policy)
        counters = telemetry.registry.counters
    assert results == EXPECTED
    assert counters["exec.chunk_retries"] >= 1


def test_serial_exhausted_retries_without_store_reraise(tmp_path):
    context = MarkerContext(str(tmp_path))
    with pytest.raises(RuntimeError, match="permanently poisoned"):
        SerialExecutor().run_chunks(
            poison_chunk, context, TASKS, policy=RunPolicy(retries=1, backoff=0.0)
        )


def test_serial_quarantine_with_store(tmp_path):
    context = MarkerContext(str(tmp_path), salt=1)
    store = open_store(tmp_path / "q.sqlite")
    policy = RunPolicy(store=store, retries=1, backoff=0.0)
    with telemetry_session() as telemetry:
        with pytest.raises(ChunkQuarantinedError) as excinfo:
            SerialExecutor().run_chunks(poison_chunk, context, TASKS, policy=policy)
        counters = telemetry.registry.counters
    (chunk_index, fingerprint, error) = excinfo.value.failures[0]
    assert "permanently poisoned" in error
    record = store.backend.get(fingerprint)
    assert record.status == QUARANTINED
    assert record.attempts == 2  # 1 try + 1 retry
    assert counters["store.quarantined"] == 1.0
    # chunks before the poison one were committed and stay durable
    assert store.count("done") >= 1


def test_process_retry_recovers(tmp_path):
    context = MarkerContext(str(tmp_path), salt=2)
    policy = RunPolicy(retries=2, backoff=0.0)
    with ProcessExecutor(workers=2) as executor:
        results = executor.run_chunks(flaky_chunk, context, TASKS, policy=policy)
    assert results == EXPECTED


def test_process_quarantine_keeps_other_chunks(tmp_path):
    context = MarkerContext(str(tmp_path), salt=3)
    store = open_store(tmp_path / "pq.jsonl")
    policy = RunPolicy(store=store, retries=1, backoff=0.0)
    with ProcessExecutor(workers=2) as executor:
        with pytest.raises(ChunkQuarantinedError) as excinfo:
            executor.run_chunks(poison_chunk, context, TASKS, policy=policy)
    assert len(excinfo.value.failures) == 1
    assert store.count(QUARANTINED) == 1
    # every healthy chunk was still evaluated and committed
    from repro.exec.engine import default_chunksize

    size = default_chunksize(len(TASKS), 2)
    n_chunks = -(-len(TASKS) // size)
    assert store.count("done") == n_chunks - 1


def test_process_quarantined_rerun_reattempts_only_poison(tmp_path):
    context = MarkerContext(str(tmp_path), salt=4)
    store = open_store(tmp_path / "rq.sqlite")
    policy = RunPolicy(store=store, retries=0, backoff=0.0)
    with ProcessExecutor(workers=2) as executor:
        with pytest.raises(ChunkQuarantinedError):
            executor.run_chunks(poison_chunk, context, TASKS, policy=policy)
        done_before = store.count("done")
        # the poison is "fixed": rerun replays the healthy chunks and
        # re-attempts only the quarantined one
        with telemetry_session() as telemetry:
            results = executor.run_chunks(well_behaved_chunk, context, TASKS, policy=policy)
            counters = telemetry.registry.counters
    assert results == EXPECTED
    assert counters["store.hits"] == done_before
    assert counters["store.commits"] == 1.0  # just the previously poisoned chunk
    assert store.count(QUARANTINED) == 0  # its record was overwritten to done
    assert store.count("done") == done_before + 1


def test_broken_pool_is_rebuilt_and_chunks_retried(tmp_path):
    context = MarkerContext(str(tmp_path), salt=5)
    # generous retry budget: every pool break charges all in-flight chunks
    # a failed attempt, and each of the 6 chunks crashes its first worker
    policy = RunPolicy(retries=8, backoff=0.0)
    with ProcessExecutor(workers=2) as executor:
        results = executor.run_chunks(crashing_chunk, context, TASKS, policy=policy)
        # the rebuilt pool keeps serving later calls
        again = executor.run_chunks(well_behaved_chunk, context, TASKS)
    assert results == EXPECTED
    assert again == EXPECTED


def test_storeless_process_failure_propagates(tmp_path):
    context = MarkerContext(str(tmp_path), salt=6)
    with ProcessExecutor(workers=2) as executor:
        with pytest.raises(RuntimeError, match="permanently poisoned"):
            executor.run_chunks(
                poison_chunk, context, TASKS, policy=RunPolicy(retries=0, backoff=0.0)
            )
