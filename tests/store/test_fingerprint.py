"""Chunk fingerprints: deterministic, canonical, sensitive to what matters."""

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.ecc import EccMode
from repro.common.errors import StoreError
from repro.exec.tasks import CampaignContext, InjectionTask, WorkloadHandle
from repro.faultsim.frameworks import NvBitFi, Sassifi
from repro.store.fingerprint import (
    STORE_SALT,
    canonical,
    canonical_json,
    chunk_fingerprint,
    context_kind,
    context_payload,
)
from repro.workloads.registry import get_workload


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclass(frozen=True)
class Point:
    x: int
    y: float


def test_canonical_primitives_pass_through():
    assert canonical(None) is None
    assert canonical(True) is True
    assert canonical(3) == 3
    assert canonical(1.5) == 1.5
    assert canonical("abc") == "abc"


def test_canonical_enum_and_numpy():
    assert canonical(Color.RED) == {"__enum__": "Color", "name": "RED"}
    assert canonical(np.int64(7)) == 7
    array = np.arange(4, dtype=np.float32)
    encoded = canonical(array)
    assert encoded["__ndarray__"] == "float32" and encoded["shape"] == [4]
    # content-addressed: same values → same digest, different values differ
    assert canonical(np.arange(4, dtype=np.float32)) == encoded
    assert canonical(np.arange(5, dtype=np.float32)) != encoded


def test_canonical_mapping_is_order_independent():
    assert canonical({"b": 1, "a": 2}) == canonical(dict([("a", 2), ("b", 1)]))


def test_canonical_dataclass():
    encoded = canonical(Point(1, 2.0))
    assert encoded["__dataclass__"] == "Point"
    assert canonical_json(Point(1, 2.0)) == canonical_json(Point(1, 2.0))
    assert canonical_json(Point(1, 2.0)) != canonical_json(Point(1, 3.0))


def test_canonical_rejects_opaque_objects():
    with pytest.raises(StoreError):
        canonical(object())


def _context(seed=0, ecc=EccMode.ON, device=KEPLER_K40C, framework=None):
    workload = get_workload(device.architecture, "FMXM", seed=seed)
    return CampaignContext(
        device=device,
        framework=framework if framework is not None else NvBitFi(),
        ecc=ecc.value,
        root_seed=seed,
        workload=WorkloadHandle.wrap(workload),
    )


def _tasks(n=3, seed=0):
    return [
        InjectionTask(
            index=i, group="op:FADD", target_index=i, root_seed=seed,
            rng_path=("faultsim", "t", "task", i),
        )
        for i in range(n)
    ]


def test_chunk_fingerprint_is_deterministic():
    a = chunk_fingerprint(_context(), _tasks())
    b = chunk_fingerprint(_context(), _tasks())
    assert a == b
    assert len(a) == 64  # sha256 hex


def test_fingerprint_sensitive_to_seed_ecc_device_framework_tasks():
    base = chunk_fingerprint(_context(), _tasks())
    assert chunk_fingerprint(_context(seed=1), _tasks(seed=1)) != base
    assert chunk_fingerprint(_context(ecc=EccMode.OFF), _tasks()) != base
    assert chunk_fingerprint(_context(device=VOLTA_V100), _tasks()) != base
    assert chunk_fingerprint(_context(framework=Sassifi()), _tasks()) != base
    assert chunk_fingerprint(_context(), _tasks(n=4)) != base


def test_fingerprint_includes_code_version_salt():
    payload = context_payload(_context())
    assert payload["kind"] == "campaign"
    assert STORE_SALT.startswith("repro-store/")


def test_context_kind():
    assert context_kind(_context()) == "campaign"
    assert context_kind(Point(1, 2.0)) == "Point"
