"""The resume contract: a campaign killed after K chunks and resumed is
byte-identical — records and domain telemetry — to an uninterrupted run,
for both backends, serial and process execution, ECC on and off."""

import pytest

import repro.api as api
import repro.faultsim.campaign as campaign_mod
from repro.arch.ecc import EccMode
from repro.telemetry import telemetry_session

INJECTIONS = 24
#: bookkeeping the store/engine adds; everything else ("domain" telemetry:
#: campaign.*, sim.*, beam.*, ...) must be bit-identical under resume
_BOOKKEEPING = ("store.", "exec.chunk_retries", "span.checkpoint.")


def _domain(counters):
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(_BOOKKEEPING)
    }


def _signature(result):
    return [
        (r.group, r.outcome, r.op, r.bit, r.detail, r.due_cause)
        for r in result.records
    ]


def _run(store=None, *, seed=1, workers=1, ecc="on", on_result=None, **kwargs):
    with telemetry_session() as telemetry:
        result = api.run_campaign(
            "FMXM",
            device="kepler",
            injections=INJECTIONS,
            seed=seed,
            ecc=ecc,
            workers=workers,
            store=store,
            on_result=on_result,
            **kwargs,
        )
        counters = dict(telemetry.registry.counters)
    return result, counters


class _Interrupt(RuntimeError):
    """Stands in for SIGKILL/Ctrl-C at a deterministic point."""


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("ecc", ["on", "off"])
def test_interrupted_campaign_resumes_bit_identical(tmp_path, backend, workers, ecc):
    store_path = str(tmp_path / f"campaign.{'jsonl' if backend == 'jsonl' else 'sqlite'}")

    # ground truth: one uninterrupted, storeless run
    baseline, baseline_counters = _run(workers=workers, ecc=ecc)

    # "crash" partway through: abort after K completed evaluations
    seen = {"n": 0}

    def killer(_record):
        seen["n"] += 1
        if seen["n"] >= INJECTIONS // 3:
            raise _Interrupt("simulated crash")

    with pytest.raises(_Interrupt):
        _run(store_path, workers=workers, ecc=ecc, on_result=killer)

    # resume: completed chunks replay from the store, the rest execute
    resumed, resumed_counters = _run(store_path, workers=workers, ecc=ecc)
    assert _signature(resumed) == _signature(baseline)
    assert resumed_counters.get("store.hits", 0) >= 1
    assert _domain(resumed_counters) == _domain(baseline_counters)

    # a second warm pass is a pure replay, still bit-identical
    replayed, replay_counters = _run(store_path, workers=workers, ecc=ecc)
    assert _signature(replayed) == _signature(baseline)
    assert replay_counters.get("store.misses", 0) == 0
    assert replay_counters.get("store.commits", 0) == 0
    assert _domain(replay_counters) == _domain(baseline_counters)


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_warm_cache_makes_zero_simulator_invocations(tmp_path, backend, monkeypatch):
    store_path = str(tmp_path / f"warm.{'jsonl' if backend == 'jsonl' else 'sqlite'}")
    first, _ = _run(store_path)

    def forbidden(*args, **kwargs):
        raise AssertionError("chunk evaluated despite a warm cache")

    monkeypatch.setattr(campaign_mod, "run_injection_chunk", forbidden)
    warm, counters = _run(store_path)
    assert _signature(warm) == _signature(first)
    assert counters.get("store.misses", 0) == 0
    assert counters.get("store.commits", 0) == 0
    assert counters["store.tasks_replayed"] == INJECTIONS


def test_changed_seed_and_config_miss(tmp_path):
    store_path = str(tmp_path / "miss.sqlite")
    _run(store_path, seed=1)

    _, other_seed = _run(store_path, seed=2)
    assert other_seed.get("store.hits", 0) == 0
    assert other_seed.get("store.misses", 0) >= 1

    _, other_ecc = _run(store_path, seed=1, ecc="off")
    assert other_ecc.get("store.hits", 0) == 0

    _, other_fw = _run(store_path, seed=1, framework="sassifi")
    assert other_fw.get("store.hits", 0) == 0


def test_refresh_forces_recompute(tmp_path):
    store_path = str(tmp_path / "refresh.sqlite")
    first, _ = _run(store_path)
    refreshed, counters = _run(store_path, refresh=True)
    assert _signature(refreshed) == _signature(first)
    assert counters.get("store.hits", 0) == 0
    assert counters["store.commits"] >= 1
    # the refreshed entries serve the next warm read
    _, warm = _run(store_path)
    assert warm.get("store.misses", 0) == 0


def test_resume_without_store_is_rejected(tmp_path):
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="require a store"):
        _run(None, resume=True)
    with pytest.raises(ConfigurationError, match="conflict"):
        _run(str(tmp_path / "x.sqlite"), resume=True, refresh=True)


def test_beam_run_resumes_from_store(tmp_path):
    store_path = str(tmp_path / "beam.sqlite")

    def beam(**kwargs):
        with telemetry_session() as telemetry:
            result = api.run_beam(
                "FMXM", device="kepler", ecc="off", beam_hours=4.0,
                mode="expected", max_fault_evals=24, seed=3, **kwargs,
            )
            return result, dict(telemetry.registry.counters)

    baseline, _ = beam()
    first, cold = beam(store=store_path)
    assert cold["store.commits"] >= 1
    warm, counters = beam(store=store_path)
    assert counters.get("store.misses", 0) == 0
    assert warm.fit_sdc.value == baseline.fit_sdc.value == first.fit_sdc.value
    assert warm.fit_due.value == baseline.fit_due.value
    assert {r: (t.faults, t.sdc, t.due) for r, t in warm.tallies.items()} == {
        r: (t.faults, t.sdc, t.due) for r, t in baseline.tallies.items()
    }


def test_memory_avf_resumes_from_store(tmp_path):
    from repro.arch.devices import KEPLER_K40C
    from repro.predict.model import measure_memory_avf
    from repro.workloads.registry import get_workload

    store_path = str(tmp_path / "avf.jsonl")
    workload = get_workload("kepler", "FMXM", seed=4)
    baseline = measure_memory_avf(KEPLER_K40C, workload, strikes=16, seed=4)
    with telemetry_session():
        cold = measure_memory_avf(
            KEPLER_K40C, workload, strikes=16, seed=4, store=store_path
        )
    with telemetry_session() as telemetry:
        warm = measure_memory_avf(
            KEPLER_K40C, workload, strikes=16, seed=4, store=store_path
        )
        counters = telemetry.registry.counters
    assert cold == warm == baseline
    assert counters.get("store.misses", 0) == 0
    assert counters["store.tasks_replayed"] == 16.0


def test_session_threads_policy_through_config(tmp_path):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.session import ExperimentSession

    config = ExperimentConfig(
        seed=5, injections=INJECTIONS, store=str(tmp_path / "sess.sqlite")
    )
    with telemetry_session() as t1:
        first = ExperimentSession(config).campaign("kepler", "nvbitfi", "FMXM")
        cold = dict(t1.registry.counters)
    assert cold["store.commits"] >= 1
    with telemetry_session() as t2:
        second = ExperimentSession(config).campaign("kepler", "nvbitfi", "FMXM")
        warm = dict(t2.registry.counters)
    assert _signature(first) == _signature(second)
    assert warm.get("store.misses", 0) == 0
