"""Backend contract: atomic durable records, last-write-wins, torn-tail
tolerance, and the open_store spelling rules."""

import pytest

from repro.common.errors import StoreError
from repro.store import (
    ChunkRecord,
    DONE,
    JsonlBackend,
    QUARANTINED,
    SQLiteBackend,
    open_store,
)

BACKENDS = {"sqlite": SQLiteBackend, "jsonl": JsonlBackend}


def _record(fp="f" * 64, status=DONE, attempts=1):
    return ChunkRecord(
        fingerprint=fp,
        kind="campaign",
        status=status,
        payload=[{"t": "json", "v": 1}],
        telemetry={"counters": {"x": 1.0}},
        meta={"tasks": 1},
        attempts=attempts,
        created=123.0,
    )


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    suffix = ".jsonl" if request.param == "jsonl" else ".sqlite"
    b = BACKENDS[request.param](tmp_path / f"store{suffix}")
    yield b
    b.close()


def test_round_trip(backend):
    assert backend.get("f" * 64) is None
    backend.put(_record())
    record = backend.get("f" * 64)
    assert record.status == DONE
    assert record.payload == [{"t": "json", "v": 1}]
    assert record.telemetry == {"counters": {"x": 1.0}}
    assert record.meta == {"tasks": 1}


def test_last_write_wins(backend):
    backend.put(_record(status=QUARANTINED))
    backend.put(_record(status=DONE, attempts=2))
    record = backend.get("f" * 64)
    assert record.status == DONE and record.attempts == 2


def test_count_by_status(backend):
    backend.put(_record(fp="a" * 64))
    backend.put(_record(fp="b" * 64, status=QUARANTINED))
    assert backend.count() == 2
    assert backend.count(DONE) == 1
    assert backend.count(QUARANTINED) == 1
    assert sorted(backend.fingerprints()) == ["a" * 64, "b" * 64]


def test_reload_survives_restart(tmp_path):
    for name, cls in BACKENDS.items():
        path = tmp_path / f"re-{name}"
        first = cls(path)
        first.put(_record())
        first.close()
        second = cls(path)
        assert second.get("f" * 64).payload == [{"t": "json", "v": 1}]
        second.close()


def test_jsonl_skips_torn_tail(tmp_path):
    path = tmp_path / "log.jsonl"
    backend = JsonlBackend(path)
    backend.put(_record(fp="a" * 64))
    backend.put(_record(fp="b" * 64))
    backend.close()
    # simulate a crash mid-append: the final line is torn
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"fingerprint": "cccc", "kind": "campa')
    reloaded = JsonlBackend(path)
    assert reloaded.count() == 2
    assert reloaded.get("cccc") is None
    # the log is still appendable after a torn tail
    reloaded.put(_record(fp="d" * 64))
    assert reloaded.count() == 3
    reloaded.close()


def test_missing_parent_directory_is_an_error(tmp_path):
    with pytest.raises(StoreError, match="directory does not exist"):
        SQLiteBackend(tmp_path / "no" / "such" / "dir" / "s.sqlite")
    with pytest.raises(StoreError, match="directory does not exist"):
        JsonlBackend(tmp_path / "no" / "such" / "dir" / "s.jsonl")


# -- open_store spelling ---------------------------------------------------------


def test_open_store_suffix_selects_backend(tmp_path):
    assert isinstance(open_store(tmp_path / "a.sqlite").backend, SQLiteBackend)
    assert isinstance(open_store(tmp_path / "a.db").backend, SQLiteBackend)
    assert isinstance(open_store(tmp_path / "a.jsonl").backend, JsonlBackend)
    assert isinstance(open_store(tmp_path / "a.ndjson").backend, JsonlBackend)


def test_open_store_prefix_overrides_suffix(tmp_path):
    store = open_store(f"jsonl:{tmp_path / 'odd.db'}")
    assert isinstance(store.backend, JsonlBackend)
    store = open_store(f"sqlite:{tmp_path / 'odd.jsonl.db'}")
    assert isinstance(store.backend, SQLiteBackend)


def test_open_store_conflicting_spellings(tmp_path):
    with pytest.raises(StoreError):
        open_store(f"jsonl:{tmp_path / 'x'}", backend="sqlite")
    with pytest.raises(StoreError):
        open_store(tmp_path / "x", backend="parquet")


def test_open_store_passthrough(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    assert open_store(store) is store


def test_store_counters_and_spans(tmp_path):
    from repro.telemetry import telemetry_session

    with telemetry_session() as telemetry:
        with open_store(tmp_path / "t.sqlite") as store:
            assert store.get("0" * 64) is None          # miss
            store.put_chunk("0" * 64, "campaign", [1, 2], {"counters": {}})
            record = store.get("0" * 64)                # hit
            results, snapshot = store.load_chunk(record)
            assert results == [1, 2]
            store.quarantine("1" * 64, "campaign", "boom", attempts=3)
            assert store.get("1" * 64) is None          # quarantined ≠ hit
        counters = telemetry.registry.counters
        histograms = telemetry.registry.histograms
    assert counters["store.misses"] == 2.0
    assert counters["store.hits"] == 1.0
    assert counters["store.commits"] == 1.0
    assert counters["store.tasks_replayed"] == 2.0
    assert counters["store.quarantined"] == 1.0
    # each commit runs inside a "checkpoint" span (timed into its histogram)
    assert histograms["span.checkpoint.seconds"].total == 1
