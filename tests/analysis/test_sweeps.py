"""Analysis utilities: seed sweeps, beam-mode agreement, rank correlation."""

import pytest

from repro.analysis import (
    AvfSweep,
    beam_mode_agreement,
    rank_correlation,
    seed_sweep_campaign,
)
from repro.arch.devices import KEPLER_K40C
from repro.common.errors import ConfigurationError
from repro.faultsim.frameworks import NvBitFi
from repro.faultsim.outcomes import Outcome
from repro.workloads.registry import get_workload


class TestAvfSweep:
    def test_statistics(self):
        sweep = AvfSweep("X", "F", Outcome.SDC, (0.4, 0.5, 0.45))
        assert sweep.mean == pytest.approx(0.45)
        assert sweep.spread == pytest.approx(0.1)
        assert sweep.stable_within(0.1)
        assert not sweep.stable_within(0.05)

    def test_single_seed_std_zero(self):
        assert AvfSweep("X", "F", Outcome.SDC, (0.4,)).std == 0.0

    def test_campaign_sweep_is_stable(self):
        """AVFs from independent seeds must agree within sampling noise —
        the reproducibility behind the paper's campaign sizing."""
        sweep = seed_sweep_campaign(
            KEPLER_K40C,
            NvBitFi(),
            lambda seed: get_workload("kepler", "FGAUSSIAN", seed=seed),
            injections=100,
            seeds=(0, 1, 2),
        )
        assert len(sweep.values) == 3
        assert sweep.stable_within(0.25)
        assert 0.0 < sweep.mean < 1.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            seed_sweep_campaign(KEPLER_K40C, NvBitFi(), lambda s: None, 10, ())


class TestBeamModeAgreement:
    def test_estimators_agree(self):
        """MC counting statistics must center on the expected-value FIT."""
        agreement = beam_mode_agreement(
            KEPLER_K40C,
            lambda seed: get_workload("kepler", "FMXM", seed=seed),
            mc_seeds=(0, 1, 2),
            max_fault_evals=100,
        )
        assert agreement.expected_fit > 0
        assert 0.4 < agreement.ratio < 2.5


class TestRankCorrelation:
    def test_perfect_order(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            rank_correlation([1, 2, 3], [1, 2])

    def test_table1_ipc_ranks_track_paper(self):
        """Quantifies the Table I shape claim: our measured Kepler IPC
        ranking positively correlates with the paper's NVPROF ranking."""
        from repro.profiling import Profiler

        paper = {
            "CCL": 0.14, "BFS": 1.22, "FGAUSSIAN": 0.51, "FLUD": 0.58, "NW": 0.2,
            "FMXM": 1.5, "MERGESORT": 2.11, "QUICKSORT": 1.97, "FGEMM": 4.94,
        }
        profiler = Profiler(KEPLER_K40C)
        ours = [
            profiler.metrics(get_workload("kepler", code)).ipc for code in paper
        ]
        rho = rank_correlation(ours, list(paper.values()))
        assert rho > 0.3
