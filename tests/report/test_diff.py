"""Cross-store diffing: self-diffs are empty (including across backends
and worker counts), real drift is caught, and the tolerance gate fires on
relative metric deltas."""

import repro.api as api
from repro.store.store import open_store
from repro.report import diff_stores, extract_store, render_diff_html, render_diff_text


def test_self_diff_is_empty(stores):
    diff = diff_stores(
        extract_store(stores["sqlite_w1"]), extract_store(stores["sqlite_w1"])
    )
    assert diff.is_empty
    assert diff.violations(0.0) == []
    assert all(run.status == "match" for run in diff.runs)


def test_cross_backend_and_cross_worker_diffs_are_empty(stores):
    base = extract_store(stores["sqlite_w1"])
    for other in ("jsonl_w1", "sqlite_w2"):
        diff = diff_stores(base, extract_store(stores[other]))
        assert diff.is_empty, other
        assert diff.violations(0.0) == [], other


def test_same_identity_different_sampling_yields_metric_deltas(stores, tmp_path):
    # same context (workload/seed/device/ecc) but more injections: aligns
    # as ONE run with record and metric deltas, not as two runs
    grown = str(tmp_path / "grown.sqlite")
    api.run_campaign(
        "FMXM", device="kepler", injections=14, seed=3, ecc="on", policy=api.ExecutionPolicy(store=open_store(grown))
    )
    base = extract_store(stores["sqlite_w1"])
    campaign_a = next(s for s in base.slices if s.kind == "campaign")
    other = extract_store(grown)
    diff = diff_stores(
        type(base)(slices=[campaign_a]), other
    )
    assert not diff.is_empty
    (run,) = diff.runs
    assert run.status == "changed"
    assert run.evaluations == (10, 14)
    assert "evaluations" in run.metric_deltas
    # evaluations drift 10 → 14 is ~28.6% relative: gated at 5%, not 50%
    assert any("evaluations" in v for v in diff.violations(0.05))
    assert all("evaluations" not in v for v in diff.violations(0.5))


def test_disjoint_runs_always_violate(stores, tmp_path):
    other_seed = str(tmp_path / "seed9.sqlite")
    api.run_campaign(
        "FMXM", device="kepler", injections=10, seed=9, ecc="on", policy=api.ExecutionPolicy(store=open_store(other_seed))
    )
    base = extract_store(stores["sqlite_w1"])
    diff = diff_stores(base, extract_store(other_seed))
    statuses = {run.status for run in diff.runs}
    assert "only_a" in statuses and "only_b" in statuses
    # unpaired runs violate at ANY tolerance
    assert diff.violations(1e9)


def test_diff_renderings_are_deterministic(stores):
    diff = diff_stores(
        extract_store(stores["sqlite_w1"]), extract_store(stores["jsonl_w1"])
    )
    text = render_diff_text(diff, 0.0)
    assert "identical" in text
    assert text == render_diff_text(diff, 0.0)
    html = render_diff_html(diff, 0.0)
    assert "<!DOCTYPE html>" in html and "identical" in html
    assert html == render_diff_html(diff, 0.0)
