"""CLI surface of the report layer: exit codes, byte-stable artifacts,
due-report formats, bench history, and the store-reading telemetry-report."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.__main__ import main as experiments_main


# -- report: dashboards --------------------------------------------------------------


def test_report_renders_byte_identical_html(stores, tmp_path, capsys):
    out_a = tmp_path / "a.html"
    out_b = tmp_path / "b.html"
    assert cli_main(["report", "--store", stores["sqlite_w1"], "--out", str(out_a)]) == 0
    assert cli_main(["report", "--store", stores["sqlite_w2"], "--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    assert "wrote" in capsys.readouterr().out
    assert not list(tmp_path.glob("*.tmp"))  # atomic write


def test_report_multiple_stores(stores, tmp_path):
    out = tmp_path / "multi.html"
    code = cli_main([
        "report", "--store", stores["sqlite_w1"], "--store", stores["jsonl_w1"],
        "--out", str(out),
    ])
    assert code == 0
    assert "FMXM" in out.read_text()


def test_report_missing_store_exits_2(tmp_path, capsys):
    code = cli_main(["report", "--store", str(tmp_path / "nope.sqlite")])
    assert code == 2
    assert "no store" in capsys.readouterr().err


def test_report_empty_store_exits_2(tmp_path, capsys):
    from repro.store.store import open_store

    spec = str(tmp_path / "empty.sqlite")
    open_store(spec).close()
    assert cli_main(["report", "--store", spec, "--out", str(tmp_path / "r.html")]) == 2
    assert "empty" in capsys.readouterr().err


def test_report_requires_a_mode():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["report"])
    assert excinfo.value.code == 2


def test_report_rejects_mixed_modes(stores):
    with pytest.raises(SystemExit) as excinfo:
        cli_main([
            "report", "--store", stores["sqlite_w1"],
            "--diff", stores["sqlite_w1"], stores["jsonl_w1"],
        ])
    assert excinfo.value.code == 2


# -- report: diff mode ---------------------------------------------------------------


def test_self_diff_exits_0(stores, capsys):
    code = cli_main(["report", "--diff", stores["sqlite_w1"], stores["jsonl_w1"]])
    assert code == 0
    assert "identical" in capsys.readouterr().out


def test_diff_beyond_tolerance_exits_1(stores, tmp_path, capsys):
    import repro.api as api
    from repro.store.store import open_store

    grown = str(tmp_path / "grown.sqlite")
    api.run_campaign(
        "FMXM", device="kepler", injections=14, seed=3, ecc="on", policy=api.ExecutionPolicy(store=open_store(grown))
    )
    code = cli_main([
        "report", "--diff", stores["sqlite_w1"], grown, "--tolerance", "0.05",
    ])
    assert code == 1
    assert "violations" in capsys.readouterr().out


def test_diff_writes_html_artifact(stores, tmp_path, capsys):
    out = tmp_path / "diff.html"
    code = cli_main([
        "report", "--diff", stores["sqlite_w1"], stores["sqlite_w2"],
        "--out", str(out),
    ])
    assert code == 0
    assert "identical" in out.read_text()
    capsys.readouterr()


def test_diff_missing_store_exits_2(stores, tmp_path, capsys):
    code = cli_main([
        "report", "--diff", stores["sqlite_w1"], str(tmp_path / "nope.sqlite"),
    ])
    assert code == 2
    assert "store B" in capsys.readouterr().err


# -- due-report --from-store ---------------------------------------------------------


def test_due_report_from_store_text(stores, capsys):
    code = cli_main(["due-report", "--from-store", stores["sqlite_w1"], "--format", "text"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DUE provenance" in out and "FMXM" in out


def test_due_report_from_store_json_and_md(stores, capsys):
    assert cli_main(["due-report", "--from-store", stores["sqlite_w1"]]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows and all(r["workload"] == "FMXM" for r in rows)
    assert cli_main([
        "due-report", "--from-store", stores["jsonl_w1"], "--format", "md",
    ]) == 0
    assert capsys.readouterr().out.startswith("| kind |")


def test_due_report_from_missing_store_exits_2(tmp_path, capsys):
    code = cli_main(["due-report", "--from-store", str(tmp_path / "gone.sqlite")])
    assert code == 2
    assert "no store" in capsys.readouterr().err


def test_due_report_workload_filter_miss_exits_2(stores, capsys):
    code = cli_main(["due-report", "NOPE", "--from-store", stores["sqlite_w1"]])
    assert code == 2
    assert "no campaign records" in capsys.readouterr().err


def test_due_report_live_requires_workload(capsys):
    assert cli_main(["due-report"]) == 2
    assert "workload is required" in capsys.readouterr().err


# -- bench history -------------------------------------------------------------------


def test_bench_append_history_and_report_sparkline(stores, tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    code = cli_main([
        "bench", "--out", str(out), "--warmup", "1", "--sim-runs", "2",
        "--sass-runs", "2", "--injections", "5", "--append-history",
    ])
    assert code == 0
    history = tmp_path / "BENCH_history.jsonl"
    assert history.exists()
    # a second point, fabricated so the test doesn't pay for another bench
    from repro.common.atomicio import append_jsonl, read_jsonl

    entry = json.loads(out.read_text())
    entry["layers"]["campaign"]["injections_per_sec"]["fast"] *= 1.5
    append_jsonl(history, entry)
    assert len(read_jsonl(history)) == 2

    html_out = tmp_path / "report.html"
    code = cli_main([
        "report", "--store", stores["sqlite_w1"], "--bench", str(out),
        "--history", str(history), "--out", str(html_out),
    ])
    assert code == 0
    html = html_out.read_text()
    assert "Bench baseline" in html and "trajectory" in html
    capsys.readouterr()


def test_report_with_missing_bench_or_history_exits_2(stores, tmp_path, capsys):
    assert cli_main([
        "report", "--store", stores["sqlite_w1"],
        "--bench", str(tmp_path / "no.json"), "--out", str(tmp_path / "r.html"),
    ]) == 2
    assert cli_main([
        "report", "--store", stores["sqlite_w1"],
        "--history", str(tmp_path / "no.jsonl"), "--out", str(tmp_path / "r.html"),
    ]) == 2
    capsys.readouterr()


# -- telemetry-report on a store -----------------------------------------------------


def test_telemetry_report_reads_stores(stores, capsys):
    for name in ("sqlite_w1", "jsonl_w1"):
        assert experiments_main(["telemetry-report", stores[name]]) == 0
        out = capsys.readouterr().out
        assert "Instructions retired per opcode class" in out
        assert "run: FMXM" in out


def test_telemetry_report_still_reads_traces(tmp_path, capsys):
    import repro.api as api
    from repro.telemetry import telemetry_session

    trace = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=str(trace)):
        api.run_campaign("FMXM", device="kepler", injections=5, seed=0)
    assert experiments_main(["telemetry-report", str(trace)]) == 0
    assert "trace:" in capsys.readouterr().out


def test_telemetry_report_missing_path_exits_2(tmp_path, capsys):
    assert experiments_main(["telemetry-report", str(tmp_path / "none.jsonl")]) == 2
    assert "no trace or store" in capsys.readouterr().err
