"""Golden-snapshot determinism: the dashboard is byte-identical for the
same logical store content — across repeated renders, storage backends,
and the worker count of the producing run — and embeds no environment."""

from repro.report import extract_store, render_report


def test_render_is_byte_identical_across_backends_and_workers(stores):
    pages = {
        name: render_report([extract_store(spec)])
        for name, spec in stores.items()
    }
    assert pages["sqlite_w1"] == pages["jsonl_w1"]
    assert pages["sqlite_w1"] == pages["sqlite_w2"]
    # and rendering is idempotent
    assert pages["sqlite_w1"] == render_report([extract_store(stores["sqlite_w1"])])


def test_render_contains_all_sections(stores):
    html = render_report([extract_store(stores["sqlite_w1"])])
    for marker in (
        "<!DOCTYPE html>",
        "AVF / outcome rates",
        "DUE provenance",
        "Fault-site breakdowns",
        "Instruction mix",
        "Paper reference values",
        "<svg",
        "FMXM",
    ):
        assert marker in html, marker


def test_render_embeds_no_environment(stores):
    html = render_report([extract_store(stores["sqlite_w1"])])
    # no store paths, no backend names, no chunk partition artifacts
    raw = stores["sqlite_w1"]
    assert raw not in html
    for leak in ("sqlite", "jsonl", "/tmp/", "pytest"):
        assert leak not in html.lower(), leak


def test_render_is_self_contained(stores):
    html = render_report([extract_store(stores["sqlite_w1"])])
    assert "<script" not in html
    assert "http://" not in html.replace("http://www.w3.org", "")
    assert "https://" not in html


def test_bench_and_history_sections(stores):
    bench = {
        "layers": {
            "campaign": {
                "injections_per_sec": {"fast": 120.0, "reference": 60.0},
                "speedup": 2.0,
            }
        }
    }
    history = [
        {"layers": {"campaign": {"injections_per_sec": {"fast": v}}}}
        for v in (80.0, 100.0, 120.0)
    ]
    html = render_report(
        [extract_store(stores["sqlite_w1"])], bench=bench, history=history
    )
    assert "Bench baseline" in html
    assert "trajectory" in html
    assert "80 → 120 inj/s" in html
    # deterministic too
    assert html == render_report(
        [extract_store(stores["jsonl_w1"])], bench=bench, history=history
    )


def test_multi_store_report(stores):
    html = render_report(
        [extract_store(stores["sqlite_w1"]), extract_store(stores["sqlite_w2"])]
    )
    assert html.count("AVF / outcome rates") == 1
    assert "<h1>" in html
