"""Shared fixtures: one tiny seeded campaign+beam run persisted into three
equivalent stores (SQLite/JSONL backends, workers 1/2).  Session-scoped —
the runs are deterministic, so every test reads the same durable content."""

import pathlib

import pytest

import repro.api as api
from repro.store.store import open_store

INJECTIONS = 10
FAULT_EVALS = 12
SEED = 3


def populate(store: str, workers: int = 1) -> None:
    """One campaign + one beam exposure, checkpointed into ``store``."""
    with open_store(store) as handle:
        policy = api.ExecutionPolicy(store=handle)
        api.run_campaign(
            "FMXM", device="kepler", injections=INJECTIONS, seed=SEED,
            ecc="on", workers=workers, policy=policy,
        )
        api.run_beam(
            "FMXM", device="kepler", ecc="off", beam_hours=12, mode="expected",
            max_fault_evals=FAULT_EVALS, seed=SEED, workers=workers, policy=policy,
        )


@pytest.fixture(scope="session")
def stores(tmp_path_factory) -> dict:
    """Three stores holding the same logical content: ``sqlite_w1``,
    ``jsonl_w1`` (backend varies), ``sqlite_w2`` (partitioning varies)."""
    root: pathlib.Path = tmp_path_factory.mktemp("report-stores")
    specs = {
        "sqlite_w1": (str(root / "w1.sqlite"), 1),
        "jsonl_w1": ("jsonl:" + str(root / "w1.jsonl"), 1),
        "sqlite_w2": (str(root / "w2.sqlite"), 2),
    }
    for spec, workers in specs.values():
        populate(spec, workers=workers)
    return {name: spec for name, (spec, _) in specs.items()}
