"""The extraction contract: logical runs reassembled from a store are a
pure function of store content — identical across backends and across the
worker count that produced the chunks."""

from repro.faultsim.outcomes import Outcome
from repro.report import extract_due_report, extract_store
from repro.store.store import open_store


# -- store read-side API -------------------------------------------------------------


def test_iter_chunks_and_summary(stores):
    with open_store(stores["sqlite_w1"]) as store:
        records = list(store.iter_chunks())
        summary = store.summary()
    assert summary["chunks"] == len(records)
    assert summary["quarantined"] == 0
    assert {"campaign", "beam"} <= set(summary["kinds"])
    # filters narrow, never invent
    with open_store(stores["sqlite_w1"]) as store:
        beam_only = list(store.iter_chunks(kind="beam"))
    assert beam_only and all(r.kind == "beam" for r in beam_only)


def test_both_backends_iterate_identically(stores):
    def census(spec):
        with open_store(spec) as store:
            return [
                (r.fingerprint, r.kind, r.status, r.payload)
                for r in store.iter_chunks()
                if r.kind != "replay_session"
            ]

    assert census(stores["sqlite_w1"]) == census(stores["jsonl_w1"])


# -- extraction invariance -----------------------------------------------------------


def test_extraction_model_invariant_across_backends_and_workers(stores):
    models = {name: extract_store(spec).model() for name, spec in stores.items()}
    assert models["sqlite_w1"] == models["jsonl_w1"]
    assert models["sqlite_w1"] == models["sqlite_w2"]


def test_extracted_runs_have_expected_shape(stores):
    extract = extract_store(stores["sqlite_w1"])
    by_kind = {item.kind: item for item in extract.slices}
    assert set(by_kind) == {"campaign", "beam"}

    campaign = by_kind["campaign"]
    assert campaign.workload == "FMXM"
    assert campaign.seed == 3
    assert campaign.evaluations() == 10
    assert sum(campaign.outcome_counts().values()) == 10
    assert abs(sum(campaign.avf().values()) - 1.0) < 1e-9
    assert campaign.by_group()  # injection records carry site groups
    assert campaign.instruction_mix()  # merged telemetry counters
    assert "FMXM" in campaign.label() and "seed=3" in campaign.label()

    beam = by_kind["beam"]
    assert beam.evaluations() > 0
    per_resource = beam.by_resource()
    assert per_resource  # run-length resource meta survives the round-trip
    # every record is re-paired with exactly one resource
    assert sum(sum(c.values()) for c in per_resource.values()) == beam.evaluations()
    assert sum(count for _, count in beam.resources) == beam.evaluations()


def test_due_provenance_consistency(stores):
    extract = extract_store(stores["sqlite_w1"])
    for item in extract.slices:
        due = item.outcome_counts()[Outcome.DUE.value]
        assert sum(item.due_breakdown().values()) == due
        assert sum(item.due_domains().values()) == due

    rows = extract_due_report(extract)
    assert len(rows) == len(extract.slices)
    for row in rows:
        assert row["workload"] == "FMXM"
        assert row["due"] == sum(row["due_breakdown"].values())


def test_metrics_are_flat_floats(stores):
    extract = extract_store(stores["sqlite_w1"])
    for item in extract.slices:
        metrics = item.metrics()
        assert metrics["evaluations"] == float(item.evaluations())
        assert all(isinstance(v, float) for v in metrics.values())


# -- degraded stores -----------------------------------------------------------------


def test_legacy_chunks_without_context_meta_extract_under_legacy_key(tmp_path):
    spec = str(tmp_path / "legacy.sqlite")
    with open_store(spec) as store:
        store.put_chunk("f" * 16, "campaign", [Outcome.MASKED, Outcome.SDC], None, meta={})
    extract = extract_store(spec)
    assert len(extract.slices) == 1
    item = extract.slices[0]
    assert item.key == "legacy:campaign"
    assert item.evaluations() == 2
    assert item.workload == "unknown"


def test_replay_session_chunks_are_skipped(stores):
    extract = extract_store(stores["sqlite_w1"])
    assert all(item.kind != "replay_session" for item in extract.slices)
    if "replay_session" in extract.kinds:
        assert extract.internal > 0


def test_empty_store_extracts_empty(tmp_path):
    spec = str(tmp_path / "empty.sqlite")
    open_store(spec).close()
    extract = extract_store(spec)
    assert extract.chunks == 0 and extract.slices == []
