"""Robustness fuzz: arbitrary faults may only ever surface as simulated
device exceptions (DUE) or corrupted outputs (SDC) — never as a crash of
the simulator itself.  A fault that raises ``ReproError``/``IndexError``/
``TypeError`` would silently truncate campaigns and bias every AVF."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.common.errors import ReproError
from repro.faultsim.frameworks import NvBitFi, Sassifi
from repro.faultsim.outcomes import Outcome
from repro.sim.exceptions import GpuDeviceException
from repro.sim.injection import (
    FaultModel,
    InjectionMode,
    InjectionPlan,
    StorageStrike,
    gpr_write_stream,
)
from repro.sim.launch import run_kernel
from repro.workloads.registry import get_workload

_DEVICES = {"kepler": KEPLER_K40C, "volta": VOLTA_V100}

#: codes spanning every control-flow/memory pattern in the suite
FUZZ_CODES = [
    ("kepler", "FMXM"), ("kepler", "BFS"), ("kepler", "QUICKSORT"),
    ("kepler", "NW"), ("kepler", "CCL"), ("volta", "HGEMM-MMA"),
    ("volta", "HYOLOV3"),
]


def _fuzz_one(arch, code, trial):
    device = _DEVICES[arch]
    workload = get_workload(arch, code, seed=1)
    golden = run_kernel(device, workload.kernel, workload.sim_launch())
    rng = np.random.default_rng(trial)
    mode = rng.choice([InjectionMode.OUTPUT_VALUE, InjectionMode.ADDRESS])
    model = rng.choice(list(FaultModel))
    plan = InjectionPlan(
        mode=mode,
        stream=gpr_write_stream,
        target_index=int(rng.integers(0, max(1, int(golden.trace.total_instances)))),
        fault_model=model,
        rng=rng,
    )
    strikes = []
    if rng.random() < 0.5:
        strikes.append(
            StorageStrike(
                tick=float(rng.integers(0, max(1, int(golden.ticks)))),
                space=str(rng.choice(["rf", "global"])),
                rng=rng,
            )
        )
    try:
        run = run_kernel(
            device,
            workload.kernel,
            workload.sim_launch(),
            plan=plan,
            strikes=strikes,
            watchdog_limit=8.0 * golden.ticks,
        )
    except GpuDeviceException:
        return Outcome.DUE
    compare = workload.compare(golden.outputs, run.outputs)
    return Outcome.SDC if compare.value == "sdc" else Outcome.MASKED


@pytest.mark.parametrize("arch,code", FUZZ_CODES)
def test_random_faults_never_crash_the_simulator(arch, code):
    outcomes = set()
    for trial in range(8):
        try:
            outcomes.add(_fuzz_one(arch, code, trial))
        except (ReproError, IndexError, TypeError, KeyError, ValueError) as exc:
            pytest.fail(f"{arch}/{code} trial {trial}: simulator crash {exc!r}")
    assert outcomes  # every trial classified


def test_campaigns_complete_on_every_kepler_code():
    """Every Kepler code survives a small campaign under both injectors
    (proprietary codes are correctly refused, not crashed)."""
    from repro.faultsim.campaign import CampaignRunner
    from repro.faultsim.frameworks import FrameworkCapabilityError
    from repro.workloads.registry import kepler_codes

    for framework in (Sassifi(), NvBitFi()):
        for code in kepler_codes():
            workload = get_workload("kepler", code, seed=2)
            runner = CampaignRunner(KEPLER_K40C, framework, seed=2)
            try:
                result = runner.run(workload, 12)
            except FrameworkCapabilityError:
                assert workload.spec.proprietary
                continue
            assert result.injections == 12
