"""Micro-benchmarks: correctness, instruction purity, registry."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.common.errors import ConfigurationError
from repro.microbench.arith import ArithMicrobench
from repro.microbench.registry import (
    MICROBENCH_BUILDERS,
    get_microbench,
    kepler_microbenches,
    volta_microbenches,
)
from repro.sim.launch import run_kernel

_DEVICES = {"kepler": KEPLER_K40C, "volta": VOLTA_V100}
_ALL = [(arch, name) for arch, names in MICROBENCH_BUILDERS.items() for name in names]


@pytest.mark.parametrize("arch,name", _ALL)
def test_matches_reference(arch, name):
    mb = get_microbench(arch, name, seed=7)
    run = run_kernel(_DEVICES[arch], mb.kernel, mb.sim_launch())
    reference = mb.reference_outputs()
    for key in reference:
        np.testing.assert_array_equal(reference[key], run.outputs[key], err_msg=f"{arch}/{name}")


@pytest.mark.parametrize(
    "arch,name,op",
    [
        ("kepler", "FADD", OpClass.FADD),
        ("kepler", "IMAD", OpClass.IMAD),
        ("volta", "HFMA", OpClass.HFMA),
        ("volta", "DMUL", OpClass.DMUL),
        ("volta", "HMMA", OpClass.HMMA),
        ("volta", "FMMA", OpClass.FMMA),
    ],
)
def test_target_instruction_dominates(arch, name, op):
    """Each micro-benchmark must exercise *its* functional unit above all
    arithmetic others (§V-A design intent)."""
    mb = get_microbench(arch, name, seed=1)
    run = run_kernel(_DEVICES[arch], mb.kernel, mb.sim_launch())
    counts = run.trace.instances
    target = counts.get(op, 0)
    assert target > 0
    for other, n in counts.items():
        if other.is_arithmetic and other is not op and other is not OpClass.IADD:
            assert target >= n, f"{other} outweighs {op}"


def test_ldst_dominated_by_memory_ops():
    mb = get_microbench("kepler", "LDST", seed=1)
    run = run_kernel(KEPLER_K40C, mb.kernel, mb.sim_launch())
    from repro.arch.isa import OpCategory

    assert run.trace.category_mix()[OpCategory.LDST] > 0.3


class TestRf:
    def test_golden_has_no_mismatch(self):
        mb = get_microbench("kepler", "RF", seed=1)
        run = run_kernel(KEPLER_K40C, mb.kernel, mb.sim_launch())
        assert not run.outputs["mismatch"].any()

    def test_exposed_bits_accounting(self):
        mb = get_microbench("volta", "RF", seed=1)
        assert mb.exposed_register_bits == 512 * mb.registers * 32
        assert mb.beam_rf_registers == mb.registers

    def test_rf_strike_shows_in_mismatch_word(self):
        """A delivered RF strike during the exposure window must surface in
        the read-back comparison — the measurement principle of §V-A."""
        from repro.arch.ecc import EccMode
        from repro.sim.injection import StorageStrike

        mb = get_microbench("kepler", "RF", seed=1)
        hits = 0
        for seed in range(12):
            strike = StorageStrike(
                tick=40000.0, space="rf", rng=np.random.default_rng(seed)
            )
            run = run_kernel(
                KEPLER_K40C, mb.kernel, mb.sim_launch(), ecc=EccMode.OFF, strikes=[strike]
            )
            if run.outputs["mismatch"].any():
                hits += 1
        assert hits >= 6  # most strikes land on a live pattern register


class TestArithDesign:
    def test_mad_aliases_to_fma(self):
        from repro.workloads.base import WorkloadSpec

        spec = WorkloadSpec(name="IMAD", base="ub", dtype=DType.INT32)
        mb = ArithMicrobench(spec, "MAD", seed=0)
        assert mb.kind == "FMA"

    def test_unknown_kind_rejected(self):
        from repro.workloads.base import WorkloadSpec

        spec = WorkloadSpec(name="X", base="ub", dtype=DType.FP32)
        with pytest.raises(ValueError):
            ArithMicrobench(spec, "DIV")

    def test_float_inputs_avoid_overflow(self):
        """After the full chain the accumulator must stay finite — the
        paper's 'inputs avoid overflow' rule (§V-A)."""
        for name in ("HMUL", "HFMA", "HADD"):
            mb = get_microbench("volta", name, seed=3)
            run = run_kernel(VOLTA_V100, mb.kernel, mb.sim_launch())
            assert np.isfinite(run.outputs["out"].astype(np.float64)).all()

    def test_integer_chain_avf_is_total(self):
        """Integer chains carry every upset to the output (paper: AVF=100%
        for the integer versions): flip any accumulator bit mid-chain and
        the output must differ."""
        from repro.sim.injection import FaultModel, InjectionMode, InjectionPlan, opclass_stream

        mb = get_microbench("kepler", "IADD", seed=2)
        golden = run_kernel(KEPLER_K40C, mb.kernel, mb.sim_launch()).outputs["out"]
        sdc = 0
        trials = 20
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            plan = InjectionPlan(
                mode=InjectionMode.OUTPUT_VALUE,
                stream=opclass_stream(OpClass.IADD),
                target_index=int(rng.integers(0, 20000)),
                fault_model=FaultModel.SINGLE_BIT,
                rng=rng,
            )
            out = run_kernel(KEPLER_K40C, mb.kernel, mb.sim_launch(), plan=plan).outputs["out"]
            if not np.array_equal(out, golden):
                sdc += 1
        assert sdc >= trials * 0.8


class TestRegistry:
    def test_kepler_list_matches_fig3(self):
        assert kepler_microbenches() == ["FADD", "FMUL", "FFMA", "IADD", "IMUL", "IMAD", "LDST", "RF"]

    def test_volta_list_matches_fig3(self):
        names = volta_microbenches()
        assert names[:3] == ["HADD", "HMUL", "HFMA"]
        assert "HMMA" in names and "FMMA" in names

    def test_kepler_has_no_fp16_or_mma(self):
        assert "HADD" not in kepler_microbenches()
        assert "HMMA" not in kepler_microbenches()

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            get_microbench("kepler", "QADD")
        with pytest.raises(ConfigurationError):
            get_microbench("turing", "FADD")
