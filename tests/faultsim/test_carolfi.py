"""CAROL-FI-style variable-level injector."""

import pytest

from repro.arch.devices import KEPLER_K40C
from repro.common.errors import InjectionError
from repro.faultsim.carolfi import CarolFi, compare_with_sass_level
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def carol():
    return CarolFi(KEPLER_K40C, seed=0)


class TestCampaign:
    def test_runs_and_classifies(self, carol):
        result = carol.run(get_workload("kepler", "FMXM", seed=1), 60)
        assert result.injections == 60
        assert result.framework == "CAROL-FI"
        assert all(r.group == "variable" for r in result.records)

    def test_zero_injections_rejected(self, carol):
        with pytest.raises(InjectionError):
            carol.run(get_workload("kepler", "FMXM", seed=1), 0)

    def test_no_instruction_attribution(self, carol):
        """A variable-level injector cannot name the instruction it hit —
        precisely why the paper could not use it (§III-D)."""
        result = carol.run(get_workload("kepler", "FGAUSSIAN", seed=1), 40)
        assert all(r.op is None for r in result.records)

    def test_proprietary_codes_injectable(self, carol):
        """Debugger-level tools see program variables even inside cuBLAS
        calls — the one capability edge over the SASS injectors."""
        result = carol.run(get_workload("kepler", "FGEMM", seed=1), 30)
        assert result.injections == 30

    def test_deterministic(self):
        a = CarolFi(KEPLER_K40C, seed=5).run(get_workload("kepler", "CCL", seed=1), 30)
        b = CarolFi(KEPLER_K40C, seed=5).run(get_workload("kepler", "CCL", seed=1), 30)
        assert [r.outcome for r in a.records] == [r.outcome for r in b.records]


class TestCrossAccuracy:
    def test_comparison_rows(self):
        rows = compare_with_sass_level(
            KEPLER_K40C,
            [get_workload("kepler", "FMXM", seed=1), get_workload("kepler", "MERGESORT", seed=1)],
            injections=60,
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["variable-level AVF"] <= 1.0
            assert 0.0 <= row["SASS-level AVF"] <= 1.0

    def test_vantage_points_disagree(self):
        """The two levels sample different fault populations; their AVFs
        should not coincide (Wei et al. [4]'s finding)."""
        rows = compare_with_sass_level(
            KEPLER_K40C, [get_workload("kepler", "FMXM", seed=1)], injections=100
        )
        row = rows[0]
        assert row["variable-level AVF"] != pytest.approx(row["SASS-level AVF"], abs=0.02)
