"""Batched fault evaluation ≡ per-injection execution equivalence suite.

The :class:`~repro.faultsim.batch.BatchEvaluator` classifies most of a
chunk's injections on the golden tape without executing anything; the
contract (like replay's and the fast path's) is that nothing observable
changes.  These tests pin it end to end: campaign records, DUE
breakdowns, beam tallies/FITs and captured telemetry are bit-identical
with batched evaluation on or off, replay on or off, serial or parallel,
ECC on or off — and the batch path demonstrably resolves injections
without falling through to per-injection execution (so the equivalence
is not vacuous).

The same ``span.*`` histogram exemption as the fast-path and replay
suites applies — those record wall-clock seconds, the one thing a faster
evaluation strategy is supposed to change.
"""

import pytest

from repro.api import ExecutionPolicy, get_workload, run_beam, run_campaign
from repro.arch.ecc import EccMode
from repro.sim.fastpath import fast_path
from repro.store.codec import decode_results, encode_results
from repro.telemetry import capture

#: (batch_eval, replay, workers) grid; the first entry — per-injection
#: vanilla execution, serial — is the baseline every other mode must equal.
#: batch_eval=True with replay=False pins that the knob is inert without a
#: replay session to supply the tape.
MODES = [
    (False, False, 1),
    (False, True, 1),
    (True, False, 1),
    (True, True, 1),
    (True, True, 2),
    (False, True, 2),
]


def _observable(snapshot):
    """Counters plus non-span histograms (span.* observes wall-clock)."""
    histograms = {
        name: data
        for name, data in snapshot["histograms"].items()
        if not name.startswith("span.")
    }
    return snapshot["counters"], histograms


def _policy(batch_eval, replay):
    return ExecutionPolicy(replay=replay, batch_eval=batch_eval)


class TestCampaignEquivalence:
    @pytest.mark.parametrize("code", ["FMXM", "FGAUSSIAN"])
    @pytest.mark.parametrize("ecc", [EccMode.ON, EccMode.OFF])
    def test_records_due_breakdown_and_telemetry_identical(self, code, ecc):
        def observe(batch_eval, replay, workers):
            workload = get_workload("kepler", code, seed=11)
            with capture() as registry:
                result = run_campaign(
                    workload,
                    device="k40c",
                    framework="nvbitfi",
                    injections=16,
                    seed=11,
                    ecc=ecc,
                    workers=workers,
                    policy=_policy(batch_eval, replay),
                )
            records = [
                (r.outcome, r.group, r.op, r.bit, r.detail, r.due_cause, r.contained)
                for r in result.records
            ]
            return records, result.due_breakdown(), _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for mode in MODES[1:]:
            observed = observe(*mode)
            assert observed[0] == reference[0], mode
            assert observed[1] == reference[1], mode
            assert observed[2] == reference[2], mode

    @pytest.mark.parametrize("enabled", [False, True])
    def test_fast_path_modes_identical(self, enabled):
        """Batched evaluation composes with both simulator paths."""

        def observe(batch_eval):
            workload = get_workload("kepler", "FMXM", seed=17)
            with fast_path(enabled), capture() as registry:
                result = run_campaign(
                    workload,
                    device="k40c",
                    injections=16,
                    seed=17,
                    policy=_policy(batch_eval, True),
                )
            records = [
                (r.outcome, r.group, r.op, r.bit, r.detail, r.due_cause)
                for r in result.records
            ]
            return records, _observable(registry.snapshot())

        assert observe(True) == observe(False)


class TestBeamEquivalence:
    @pytest.mark.parametrize("ecc", [EccMode.ON, EccMode.OFF])
    def test_tallies_fits_and_telemetry_identical(self, ecc):
        def observe(batch_eval, replay, workers):
            workload = get_workload("kepler", "FMXM", seed=7)
            with capture() as registry:
                result = run_beam(
                    workload,
                    device="k40c",
                    ecc=ecc,
                    max_fault_evals=18,
                    seed=7,
                    workers=workers,
                    policy=_policy(batch_eval, replay),
                )
            tallies = {
                name: (t.faults, t.sdc, t.due) for name, t in result.tallies.items()
            }
            estimates = (result.fit_sdc, result.fit_due, result.fluence_n_cm2)
            return tallies, estimates, _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for mode in MODES[1:]:
            observed = observe(*mode)
            assert observed[0] == reference[0], mode
            assert observed[1] == reference[1], mode
            assert observed[2] == reference[2], mode


class TestBatchPathEngages:
    def test_most_injections_skip_per_injection_execution(self, monkeypatch):
        """With batched evaluation on, the per-injection path (``_attempt``)
        runs only for the canary and the residual minority — guaranteeing
        the equivalence suite above compares two genuinely different
        evaluation strategies."""
        from repro.faultsim import campaign as campaign_mod

        calls = {"n": 0}
        original = campaign_mod.CampaignRunner._attempt

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(campaign_mod.CampaignRunner, "_attempt", counting)

        def run(batch_eval):
            calls["n"] = 0
            workload = get_workload("kepler", "FMXM", seed=23)
            run_campaign(
                workload,
                device="k40c",
                injections=24,
                seed=23,
                policy=_policy(batch_eval, True),
            )
            return calls["n"]

        assert run(False) == 24  # every injection executes individually
        assert run(True) < 12  # the tape resolves the bulk of the chunk


class TestRecordCodecRoundTrip:
    def test_batch_produced_records_round_trip(self):
        """Records emitted by the batched evaluator survive the store codec
        field for field (group/outcome/op/bit/detail/due_cause/contained)."""
        workload = get_workload("kepler", "FMXM", seed=29)
        result = run_campaign(
            workload,
            device="k40c",
            injections=16,
            seed=29,
            policy=_policy(True, True),
        )
        decoded = decode_results(encode_results(result.records))
        assert decoded == result.records
