"""The uncore fault domain: arch-layer FIT tables and the UncoreInjector.

Two contracts live here:

1. **Numeric sync with the beam catalog.**  ``repro.arch.uncore`` cannot
   import the beam layer (the arch layer sits below it), so the promise
   that its per-instance FITs equal ``σ_hidden × Φ × 10⁹`` for the *same*
   sensitivities the simulated beam exposes — and that its outcome splits
   equal the catalog's :class:`HiddenOutcomeModel` mixtures — is enforced
   by this test instead of by an import.
2. **Injector semantics.**  :class:`UncoreInjector` campaigns are
   deterministic per seed, label records with ``uncore:<unit>`` groups and
   machine-readable ``due_cause`` values, and report through the standard
   :class:`CampaignResult` so ``due_breakdown()`` works unchanged.
"""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.uncore import (
    KEPLER_UNCORE,
    VOLTA_UNCORE,
    UncoreFitTable,
    UncoreUnitRates,
    uncore_table,
)
from repro.arch.units import UnitKind
from repro.beam.cross_sections import KEPLER_CATALOG, VOLTA_CATALOG
from repro.common.errors import ConfigurationError, InjectionError
from repro.common.units import FIT_SCALE_HOURS, TERRESTRIAL_FLUX_N_CM2_H
from repro.faultsim.outcomes import Outcome
from repro.faultsim.uncore import UNCORE_EXCEPTIONS, UncoreInjector, uncore_due_cause
from repro.sim.exceptions import GpuDeviceException
from repro.telemetry import telemetry_session
from repro.workloads.registry import get_workload

HIDDEN_UNITS = (
    UnitKind.SCHEDULER,
    UnitKind.INSTRUCTION_PIPELINE,
    UnitKind.MEMORY_CONTROLLER,
    UnitKind.HOST_INTERFACE,
)

DUE_CAUSES = {
    "scheduler_hang",
    "ipipe_decode",
    "memctl_fault",
    "host_if_timeout",
}


class TestCatalogSync:
    """repro.arch.uncore ↔ repro.beam.cross_sections, kept in sync here."""

    @pytest.mark.parametrize("unit", HIDDEN_UNITS)
    def test_kepler_fit_matches_beam_sigma(self, unit):
        expected = (
            KEPLER_CATALOG.hidden_sigma[unit]
            * TERRESTRIAL_FLUX_N_CM2_H
            * FIT_SCALE_HOURS
        )
        assert KEPLER_UNCORE.rates_for(unit).fit_per_instance == pytest.approx(
            expected, rel=1e-12
        )

    @pytest.mark.parametrize("unit", HIDDEN_UNITS)
    def test_volta_fit_matches_beam_sigma(self, unit):
        expected = (
            VOLTA_CATALOG.hidden_sigma[unit]
            * TERRESTRIAL_FLUX_N_CM2_H
            * FIT_SCALE_HOURS
        )
        assert VOLTA_UNCORE.rates_for(unit).fit_per_instance == pytest.approx(
            expected, rel=1e-12
        )

    @pytest.mark.parametrize("unit", HIDDEN_UNITS)
    @pytest.mark.parametrize(
        "table, catalog",
        [(KEPLER_UNCORE, KEPLER_CATALOG), (VOLTA_UNCORE, VOLTA_CATALOG)],
        ids=["kepler", "volta"],
    )
    def test_outcome_splits_match_catalog(self, table, catalog, unit):
        rates = table.rates_for(unit)
        model = catalog.hidden_outcomes[unit]
        assert rates.p_due == pytest.approx(model.p_due)
        assert rates.p_sdc == pytest.approx(model.p_sdc)

    def test_tables_cover_exactly_the_hidden_units(self):
        for table in (KEPLER_UNCORE, VOLTA_UNCORE):
            assert set(table.units) == set(HIDDEN_UNITS)


class TestTable:
    def test_uncore_table_lookup(self):
        assert uncore_table("kepler") is KEPLER_UNCORE
        assert uncore_table("volta") is VOLTA_UNCORE
        with pytest.raises(ConfigurationError):
            uncore_table("pascal")

    def test_rates_for_missing_unit(self):
        partial = UncoreFitTable(
            architecture="test",
            units={UnitKind.SCHEDULER: UncoreUnitRates(1.0, 0.5, 0.1)},
        )
        with pytest.raises(ConfigurationError):
            partial.rates_for(UnitKind.HOST_INTERFACE)

    def test_visible_units_rejected(self):
        with pytest.raises(ConfigurationError):
            UncoreFitTable(
                architecture="test",
                units={UnitKind.FP32: UncoreUnitRates(1.0, 0.5, 0.1)},
            )

    def test_rates_validation(self):
        with pytest.raises(ConfigurationError):
            UncoreUnitRates(fit_per_instance=-1.0, p_due=0.5, p_sdc=0.1)
        with pytest.raises(ConfigurationError):
            UncoreUnitRates(fit_per_instance=1.0, p_due=0.7, p_sdc=0.4)

    def test_fit_due_scales_with_instances_and_activity(self):
        rates = KEPLER_UNCORE.rates_for(UnitKind.SCHEDULER)
        base = rates.fit_due_per_instance
        assert base == pytest.approx(rates.fit_per_instance * rates.p_due)
        assert KEPLER_UNCORE.fit_due(UnitKind.SCHEDULER) == pytest.approx(base)
        assert KEPLER_UNCORE.fit_due(
            UnitKind.SCHEDULER, instances=13.0, activity=0.5
        ) == pytest.approx(base * 13.0 * 0.5)
        # clamped, never negative
        assert KEPLER_UNCORE.fit_due(UnitKind.SCHEDULER, instances=-3.0) == 0.0

    def test_p_masked_completes_the_distribution(self):
        for unit in HIDDEN_UNITS:
            rates = KEPLER_UNCORE.rates_for(unit)
            assert rates.p_masked == pytest.approx(1.0 - rates.p_due - rates.p_sdc)


class TestInjector:
    N = 40

    def test_campaign_is_deterministic_per_seed(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        first = UncoreInjector(KEPLER_K40C, seed=7).run(workload, self.N)
        second = UncoreInjector(KEPLER_K40C, seed=7).run(workload, self.N)
        assert first.records == second.records

    def test_different_seeds_differ(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        first = UncoreInjector(KEPLER_K40C, seed=7).run(workload, self.N)
        other = UncoreInjector(KEPLER_K40C, seed=8).run(workload, self.N)
        assert first.records != other.records

    def test_records_carry_uncore_provenance(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        result = UncoreInjector(KEPLER_K40C, seed=3).run(workload, self.N)
        assert result.framework == "UNCORE"
        assert result.injections == self.N
        groups = {record.group for record in result.records}
        assert groups <= {f"uncore:{unit.value}" for unit in HIDDEN_UNITS}
        for record in result.records:
            if record.outcome is Outcome.DUE and not record.contained:
                assert record.due_cause in DUE_CAUSES

    def test_due_breakdown_uses_machine_readable_causes(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        result = UncoreInjector(KEPLER_K40C, seed=3).run(workload, self.N)
        breakdown = result.due_breakdown()
        assert sum(breakdown.values()) == result.count(Outcome.DUE)
        assert set(breakdown) <= DUE_CAUSES | {"watchdog"}

    def test_unit_weights_positive_for_all_units(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        weights = UncoreInjector(KEPLER_K40C, seed=0).unit_weights(workload)
        assert set(weights) == set(HIDDEN_UNITS)
        assert all(weight > 0 for weight in weights.values())

    def test_volta_supported(self):
        workload = get_workload("volta", "FMXM", seed=0)
        result = UncoreInjector(VOLTA_V100, seed=5).run(workload, 10)
        assert result.injections == 10

    def test_zero_injections_rejected(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        with pytest.raises(InjectionError):
            UncoreInjector(KEPLER_K40C, seed=0).run(workload, 0)

    def test_telemetry_counts_injections(self):
        workload = get_workload("kepler", "FMXM", seed=11)
        with telemetry_session() as telemetry:
            result = UncoreInjector(KEPLER_K40C, seed=11).run(workload, 12)
            counters = telemetry.registry.counters
        assert counters["uncore.injections"] == 12
        outcome_total = sum(
            counters.get(f"uncore.outcome.{outcome.value}", 0) for outcome in Outcome
        )
        assert outcome_total == 12
        unit_total = sum(
            counters.get(f"uncore.unit.{unit.value}", 0) for unit in HIDDEN_UNITS
        )
        assert unit_total == 12
        assert result.injections == 12

    def test_due_causes_come_from_exception_classes(self):
        for unit in HIDDEN_UNITS:
            exc_class = UNCORE_EXCEPTIONS[unit]
            assert issubclass(exc_class, GpuDeviceException)
            assert uncore_due_cause(unit) == exc_class.cause
            assert exc_class.cause in DUE_CAUSES
