"""Campaign runner: golden caching, determinism, outcome plumbing."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.common.errors import InjectionError
from repro.faultsim.campaign import CampaignRunner, run_campaign
from repro.faultsim.frameworks import NvBitFi, Sassifi
from repro.faultsim.outcomes import Outcome
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def mxm_campaign():
    """One shared 100-injection NVBitFI campaign on Kepler FMXM."""
    return run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", "FMXM", seed=1), 100, seed=3)


class TestMechanics:
    def test_requested_count(self, mxm_campaign):
        assert mxm_campaign.injections == 100

    def test_all_outcomes_classified(self, mxm_campaign):
        for record in mxm_campaign.records:
            assert record.outcome in Outcome

    def test_every_output_injection_attributed(self, mxm_campaign):
        for record in mxm_campaign.records:
            if record.group == "gpr_output" and record.outcome is not Outcome.DUE:
                assert record.op is not None

    def test_deterministic_per_seed(self):
        w = get_workload("kepler", "FGAUSSIAN", seed=1)
        a = run_campaign(KEPLER_K40C, NvBitFi(), w, 40, seed=5)
        b = run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", "FGAUSSIAN", seed=1), 40, seed=5)
        assert [r.outcome for r in a.records] == [r.outcome for r in b.records]

    def test_different_seed_differs(self):
        w = get_workload("kepler", "FGAUSSIAN", seed=1)
        a = run_campaign(KEPLER_K40C, NvBitFi(), w, 60, seed=5)
        b = run_campaign(KEPLER_K40C, NvBitFi(), w, 60, seed=6)
        assert [r.outcome for r in a.records] != [r.outcome for r in b.records]

    def test_golden_cached(self):
        runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=0)
        w = get_workload("kepler", "FMXM", seed=1)
        assert runner.golden(w) is runner.golden(w)

    def test_zero_injections_rejected(self):
        runner = CampaignRunner(KEPLER_K40C, NvBitFi(), seed=0)
        with pytest.raises(InjectionError):
            runner.run(get_workload("kepler", "FMXM"), 0)

    def test_capability_enforced(self):
        runner = CampaignRunner(KEPLER_K40C, Sassifi(), seed=0)
        with pytest.raises(Exception):
            runner.run(get_workload("kepler", "FGEMM"), 10)  # proprietary


class TestSemantics:
    def test_mxm_has_substantial_sdc_avf(self, mxm_campaign):
        """Matrix multiplication has the highest AVF among the codes (§VI)."""
        assert mxm_campaign.avf(Outcome.SDC) > 0.35

    def test_sassifi_multi_group_sampling(self):
        w = get_workload("kepler", "FMXM", seed=1)
        campaign = run_campaign(KEPLER_K40C, Sassifi(), w, 120, seed=2)
        groups = {r.group for r in campaign.records}
        assert {"fp_output", "int_output", "ld_output"} <= groups

    def test_volta_proprietary_campaign_runs(self):
        w = get_workload("volta", "FGEMM", seed=1)
        campaign = run_campaign(VOLTA_V100, NvBitFi(), w, 50, seed=2)
        assert campaign.injections == 50

    def test_yolo_low_avf(self):
        """CNN fault tolerance: most corruptions don't change the
        classification (§VI).  YOLO is proprietary, so the campaign runs on
        Volta with NVBitFI — the only combination the paper could run too."""
        w = get_workload("volta", "FYOLOV2", seed=1)
        campaign = run_campaign(VOLTA_V100, NvBitFi(), w, 60, seed=2)
        assert campaign.avf(Outcome.SDC) < 0.2

    def test_integer_code_lower_avf_than_float(self):
        """§VI: 'the smaller AVFs come from integer applications'."""
        flt = run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", "FLAVA", seed=1), 80, seed=2)
        intg = run_campaign(KEPLER_K40C, NvBitFi(), get_workload("kepler", "CCL", seed=1), 80, seed=2)
        assert flt.avf(Outcome.SDC) > intg.avf(Outcome.SDC)
