"""Campaign result aggregation."""

import pytest

from repro.arch.isa import OpClass
from repro.common.errors import InjectionError
from repro.faultsim.outcomes import CampaignResult, InjectionRecord, Outcome


def _campaign(records):
    c = CampaignResult(workload="W", framework="F", device="D")
    for r in records:
        c.add(r)
    return c


def _rec(outcome, op=None, group="g"):
    return InjectionRecord(group=group, outcome=outcome, op=op)


class TestAvf:
    def test_fractions(self):
        c = _campaign([_rec(Outcome.SDC)] * 3 + [_rec(Outcome.DUE)] * 1 + [_rec(Outcome.MASKED)] * 6)
        assert c.avf(Outcome.SDC) == pytest.approx(0.3)
        assert c.avf(Outcome.DUE) == pytest.approx(0.1)
        assert c.avf(Outcome.MASKED) == pytest.approx(0.6)
        assert c.injections == 10

    def test_empty_rejected(self):
        with pytest.raises(InjectionError):
            _campaign([]).avf(Outcome.SDC)

    def test_estimate_brackets_point(self):
        c = _campaign([_rec(Outcome.SDC)] * 30 + [_rec(Outcome.MASKED)] * 70)
        est = c.avf_estimate(Outcome.SDC)
        assert est.lower <= 0.3 <= est.upper

    def test_summary_keys(self):
        c = _campaign([_rec(Outcome.SDC), _rec(Outcome.MASKED)])
        assert set(c.summary()) == {"injections", "avf_sdc", "avf_due", "avf_masked"}


class TestBreakdowns:
    def test_by_group(self):
        c = _campaign([
            _rec(Outcome.SDC, group="a"),
            _rec(Outcome.SDC, group="a"),
            _rec(Outcome.DUE, group="b"),
        ])
        table = c.by_group()
        assert table["a"][0] == 2
        assert table["a"][1][Outcome.SDC] == 2
        assert table["b"][1][Outcome.DUE] == 1

    def test_per_op_avf(self):
        c = _campaign([
            _rec(Outcome.SDC, op=OpClass.FFMA),
            _rec(Outcome.MASKED, op=OpClass.FFMA),
            _rec(Outcome.SDC, op=OpClass.IADD),
            _rec(Outcome.DUE),  # no op attribution (RF strike)
        ])
        avf = c.per_op_avf(Outcome.SDC)
        assert avf[OpClass.FFMA] == pytest.approx(0.5)
        assert avf[OpClass.IADD] == pytest.approx(1.0)

    def test_per_op_avf_min_samples(self):
        c = _campaign([_rec(Outcome.SDC, op=OpClass.FFMA)])
        assert c.per_op_avf(Outcome.SDC, min_samples=2) == {}


class TestMerge:
    def test_merge_concatenates(self):
        a = _campaign([_rec(Outcome.SDC)])
        b = _campaign([_rec(Outcome.DUE)])
        merged = a.merged_with(b)
        assert merged.injections == 2

    def test_merge_rejects_mismatched(self):
        a = _campaign([_rec(Outcome.SDC)])
        b = CampaignResult(workload="other", framework="F", device="D")
        b.add(_rec(Outcome.SDC))
        with pytest.raises(InjectionError):
            a.merged_with(b)
