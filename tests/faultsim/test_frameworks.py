"""Injector frontends: capability matrix and site groups (§III-D)."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpClass
from repro.faultsim.frameworks import (
    FrameworkCapabilityError,
    NvBitFi,
    Sassifi,
    get_framework,
)
from repro.sim.launch import run_kernel
from repro.workloads.registry import get_workload


class TestCapabilities:
    def test_sassifi_kepler_only(self):
        sassifi = Sassifi()
        w = get_workload("kepler", "FMXM")
        sassifi.check_supported(w, KEPLER_K40C)
        with pytest.raises(FrameworkCapabilityError):
            sassifi.check_supported(get_workload("volta", "FMXM"), VOLTA_V100)

    def test_nvbitfi_both_architectures(self):
        nvbitfi = NvBitFi()
        nvbitfi.check_supported(get_workload("kepler", "FMXM"), KEPLER_K40C)
        nvbitfi.check_supported(get_workload("volta", "FMXM"), VOLTA_V100)

    def test_proprietary_rules(self):
        """Neither injector touches cuBLAS/cuDNN on Kepler; NVBitFI can on
        Volta (§III-D)."""
        gemm_k = get_workload("kepler", "FGEMM")
        gemm_v = get_workload("volta", "FGEMM")
        with pytest.raises(FrameworkCapabilityError):
            Sassifi().check_supported(gemm_k, KEPLER_K40C)
        with pytest.raises(FrameworkCapabilityError):
            NvBitFi().check_supported(gemm_k, KEPLER_K40C)
        NvBitFi().check_supported(gemm_v, VOLTA_V100)

    def test_backends(self):
        assert Sassifi().backend == "cuda7"
        assert NvBitFi().backend == "cuda10"


class TestSiteGroups:
    def test_sassifi_default_is_iov(self):
        groups = Sassifi().site_groups(get_workload("kepler", "FMXM"))
        assert [g.name for g in groups] == ["fp_output", "int_output", "ld_output"]

    def test_sassifi_extended_adds_modes(self):
        groups = Sassifi().extended_groups(get_workload("kepler", "FMXM"))
        names = [g.name for g in groups]
        assert {"pred", "address", "gpr_rf"} <= set(names)

    def test_nvbitfi_single_stream(self):
        groups = NvBitFi().site_groups(get_workload("volta", "FMXM"))
        assert len(groups) == 1
        assert groups[0].name == "gpr_output"

    def test_nvbitfi_excludes_fp16(self):
        """§VII-A: NVBitFI cannot inject into half-precision instructions."""
        stream = NvBitFi().site_groups(get_workload("volta", "HMXM"))[0].stream
        assert not stream(OpClass.HFMA)
        assert not stream(OpClass.HMMA)
        assert stream(OpClass.FFMA)
        assert stream(OpClass.IADD)

    def test_group_sizes_match_trace(self):
        w = get_workload("kepler", "FMXM")
        run = run_kernel(KEPLER_K40C, w.kernel, w.sim_launch(), backend="cuda7")
        groups = {g.name: g for g in Sassifi().site_groups(w)}
        fp = groups["fp_output"].size(run.trace)
        assert fp == run.trace.instances[OpClass.FFMA]
        intg = groups["int_output"].size(run.trace)
        assert intg > 0

    def test_fp16_only_stream_still_nonempty(self):
        """An all-FP16-arithmetic code still has INT/LDG sites for NVBitFI."""
        w = get_workload("volta", "HMXM")
        run = run_kernel(VOLTA_V100, w.kernel, w.sim_launch())
        group = NvBitFi().site_groups(w)[0]
        assert group.size(run.trace) > 0
        assert group.size(run.trace) < run.trace.total_instances


class TestLookup:
    def test_get_framework(self):
        assert get_framework("sassifi").name == "SASSIFI"
        assert get_framework("NVBITFI").name == "NVBitFI"

    def test_unknown(self):
        from repro.common.errors import InjectionError

        with pytest.raises(InjectionError):
            get_framework("gpgpusim")
