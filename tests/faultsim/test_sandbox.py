"""The injection sandbox: policies, guards, telemetry, and the exact
tick-watchdog boundary.

The sandbox is the simulated counterpart of the beam setup's DUT
supervisor (§VII-B): injected runs may hang, leak, or crash the
interpreter, and the campaign must classify — never die.  These tests pin
the containment contract:

* ``on_crash="due"`` turns any unexpected exception into a
  :class:`ContainedCrashError` (a :class:`GpuDeviceException`, so the
  normal DUE path classifies it) with ``cause="contained:<Type>"``,
* ``"quarantine"`` raises the non-retryable :class:`InjectionCrashError`,
* ``"raise"`` propagates unchanged,
* modeled device failures and operator interrupts always pass through,
* every containment increments the ``sandbox.*`` counters and emits a
  ``sandbox.containment`` point event,
* the tick watchdog fires strictly *past* its limit: a run of exactly
  ``watchdog_limit`` ticks completes, one tick more is a DUE.
"""

import pickle
import signal
import threading
import time

import pytest

import repro.faultsim.sandbox as sandbox_mod
from repro.arch.devices import KEPLER_K40C
from repro.common.errors import ConfigurationError, InjectionCrashError
from repro.faultsim.sandbox import (
    DEFAULT_LIMITS,
    WATCHDOG_FACTOR,
    InjectionSandbox,
    SandboxLimits,
)
from repro.sim.exceptions import (
    ContainedCrashError,
    GpuDeviceException,
    IllegalAddressError,
    MemoryGuardError,
    WallclockExceededError,
    WatchdogTimeout,
)
from repro.sim.launch import run_kernel
from repro.telemetry import MemorySink, telemetry_session
from repro.workloads.registry import get_workload


class TestPolicies:
    def test_result_passes_through(self):
        assert InjectionSandbox("due").run(lambda a, b: a + b, 40, b=2) == 42

    def test_due_contains_as_device_exception(self):
        sandbox = InjectionSandbox("due")

        def wedged():
            raise RecursionError("decoder ate its own tail")

        with pytest.raises(ContainedCrashError) as excinfo:
            sandbox.run(wedged)
        contained = excinfo.value
        assert isinstance(contained, GpuDeviceException)
        assert contained.cause == "contained:RecursionError"
        assert isinstance(contained.__cause__, RecursionError)

    def test_modeled_due_passes_through_uncontained(self):
        """A GpuDeviceException IS the modeled outcome, not a crash."""
        sandbox = InjectionSandbox("due")
        fault = IllegalAddressError("global", 4096, 1024)

        def faulting():
            raise fault

        with pytest.raises(IllegalAddressError) as excinfo:
            sandbox.run(faulting)
        assert excinfo.value is fault

    def test_quarantine_raises_non_retryable(self):
        sandbox = InjectionSandbox("quarantine")
        with pytest.raises(InjectionCrashError) as excinfo:
            sandbox.run(self._crash)
        error = excinfo.value
        assert error.non_retryable is True
        assert not isinstance(error, GpuDeviceException)
        assert "ZeroDivisionError" in str(error)

    def test_quarantine_error_survives_pickling(self):
        """The engine ships chunk errors across the worker→parent process
        boundary; the quarantine signal must arrive intact."""
        sandbox = InjectionSandbox("quarantine")
        with pytest.raises(InjectionCrashError) as excinfo:
            sandbox.run(self._crash)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(clone, InjectionCrashError)
        assert clone.non_retryable is True
        assert str(clone) == str(excinfo.value)

    def test_raise_propagates_unchanged(self):
        with pytest.raises(ZeroDivisionError):
            InjectionSandbox("raise").run(self._crash)

    def test_operator_interrupt_outranks_sandbox(self):
        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            InjectionSandbox("due").run(interrupted)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            InjectionSandbox("explode")

    @staticmethod
    def _crash():
        return 1 // 0


class TestLimits:
    def test_defaults_are_generous(self):
        assert DEFAULT_LIMITS.wallclock_seconds == 60.0
        assert DEFAULT_LIMITS.memory_growth_bytes == 256 * 1024 * 1024

    @pytest.mark.parametrize(
        "kwargs",
        [{"wallclock_seconds": -1.0}, {"memory_growth_bytes": -1}],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SandboxLimits(**kwargs)

    def test_wallclock_guard_fires(self):
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=0.05, memory_growth_bytes=0)
        )

        def hang():
            time.sleep(5.0)

        started = time.monotonic()
        # a GpuDeviceException, so it passes through — NOT ContainedCrashError
        with pytest.raises(WallclockExceededError):
            sandbox.run(hang)
        assert time.monotonic() - started < 4.0
        # the timer and handler are restored afterwards
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_wallclock_disarmed_after_fast_run(self):
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=30.0, memory_growth_bytes=0)
        )
        assert sandbox.run(lambda: "ok") == "ok"
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_wallclock_skipped_off_main_thread(self):
        """setitimer only works in the main thread; elsewhere the deadline
        is silently skipped rather than crashing the worker."""
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=0.01, memory_growth_bytes=0)
        )
        outcome = {}

        def worker():
            try:
                time.sleep(0.05)
                outcome["value"] = sandbox.run(lambda: "survived")
            except BaseException as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        thread = threading.Thread(target=lambda: worker())
        thread.start()
        thread.join()
        assert outcome == {"value": "survived"}

    def test_memory_guard_fires_on_growth(self, monkeypatch):
        samples = iter([100 * 1024 * 1024, 100 * 1024 * 1024 + 4097])
        monkeypatch.setattr(sandbox_mod, "_rss_bytes", lambda: next(samples))
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=0, memory_growth_bytes=4096)
        )
        with pytest.raises(MemoryGuardError) as excinfo:
            sandbox.run(lambda: "leaky")
        assert isinstance(excinfo.value, GpuDeviceException)
        assert excinfo.value.cause == "memory_guard"

    def test_memory_guard_tolerates_growth_within_limit(self, monkeypatch):
        samples = iter([100 * 1024 * 1024, 100 * 1024 * 1024 + 4096])
        monkeypatch.setattr(sandbox_mod, "_rss_bytes", lambda: next(samples))
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=0, memory_growth_bytes=4096)
        )
        assert sandbox.run(lambda: "fine") == "fine"

    def test_memory_guard_disabled_by_zero(self, monkeypatch):
        monkeypatch.setattr(
            sandbox_mod, "_rss_bytes", lambda: pytest.fail("guard should be off")
        )
        sandbox = InjectionSandbox(
            "due", SandboxLimits(wallclock_seconds=0, memory_growth_bytes=0)
        )
        assert sandbox.run(lambda: "fine") == "fine"


class TestTelemetry:
    def test_containment_counts_and_point_event(self):
        sink = MemorySink()
        with telemetry_session(sink=sink) as telemetry:
            with pytest.raises(ContainedCrashError):
                InjectionSandbox("due").run(self._recurse)
            counters = telemetry.registry.counters
            assert counters["sandbox.contained"] == 1
            assert counters["sandbox.contained.due"] == 1
            assert counters["sandbox.cause.RecursionError"] == 1
        points = [e for e in sink.events if e.get("name") == "sandbox.containment"]
        assert len(points) == 1
        assert points[0]["exc_type"] == "RecursionError"
        assert points[0]["policy"] == "due"

    def test_policies_count_separately(self):
        with telemetry_session() as telemetry:
            with pytest.raises(ContainedCrashError):
                InjectionSandbox("due").run(self._recurse)
            with pytest.raises(InjectionCrashError):
                InjectionSandbox("quarantine").run(self._recurse)
            counters = telemetry.registry.counters
            assert counters["sandbox.contained"] == 2
            assert counters["sandbox.contained.due"] == 1
            assert counters["sandbox.contained.quarantine"] == 1
            assert counters["sandbox.cause.RecursionError"] == 2

    def test_clean_run_counts_nothing(self):
        with telemetry_session() as telemetry:
            InjectionSandbox("due").run(lambda: None)
            assert "sandbox.contained" not in telemetry.registry.counters

    @staticmethod
    def _recurse():
        raise RecursionError("contained twice, counted twice")


class TestWatchdogBoundary:
    """Satellite: the tick watchdog is strict-greater-than.

    A healthy run executes exactly its golden tick count; setting
    ``watchdog_limit`` to that count must therefore complete (else every
    fault-free re-execution would be a false DUE), while any budget that
    cannot cover the full run fires :class:`WatchdogTimeout`.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        workload = get_workload("kepler", "FMXM", seed=0)
        return workload, run_kernel(KEPLER_K40C, workload.kernel, workload.sim_launch())

    def test_exactly_at_limit_is_not_due(self, golden):
        workload, reference = golden
        run = run_kernel(
            KEPLER_K40C,
            workload.kernel,
            workload.sim_launch(),
            watchdog_limit=reference.ticks,
        )
        assert run.ticks == reference.ticks

    def test_one_past_limit_is_due(self, golden):
        workload, reference = golden
        with pytest.raises(WatchdogTimeout) as excinfo:
            run_kernel(
                KEPLER_K40C,
                workload.kernel,
                workload.sim_launch(),
                watchdog_limit=reference.ticks - 1,
            )
        assert excinfo.value.cause == "watchdog"

    def test_watchdog_factor_single_source(self):
        """Every engine shares the one budget constant in the sandbox
        module — the pre-PR-5 triplicated copies must never come back."""
        from repro.beam import engine
        from repro.faultsim import campaign, carolfi, uncore

        assert WATCHDOG_FACTOR == 8.0
        for module in (campaign, carolfi, uncore, engine):
            assert module.WATCHDOG_FACTOR is sandbox_mod.WATCHDOG_FACTOR
