"""Edge cases across small helpers not owned by another test module."""

import numpy as np
import pytest

from repro.arch.units import UnitKind
from repro.common.errors import ConfigurationError
from repro.common.tables import indent


class TestUnitKind:
    def test_partition_is_exhaustive_and_disjoint(self):
        """Every unit is exactly one of: functional, storage, hidden."""
        for unit in UnitKind:
            flags = (unit.is_functional_unit, unit.is_storage, unit.is_hidden)
            assert sum(flags) == 1, unit

    def test_hidden_set_matches_paper(self):
        hidden = {u for u in UnitKind if u.is_hidden}
        assert hidden == {
            UnitKind.SCHEDULER,
            UnitKind.INSTRUCTION_PIPELINE,
            UnitKind.MEMORY_CONTROLLER,
            UnitKind.HOST_INTERFACE,
        }


class TestTablesIndent:
    def test_indent_prefixes_every_line(self):
        assert indent("a\nb") == "  a\n  b\n"


class TestBeamResultEdges:
    def test_empty_breakdown(self):
        from repro.arch.ecc import EccMode
        from repro.beam.experiment import BeamResult
        from repro.common.stats import Estimate
        from repro.faultsim.outcomes import Outcome

        result = BeamResult(
            workload="w", device="d", ecc=EccMode.ON, beam_hours=1.0,
            fluence_n_cm2=1.0,
            fit_sdc=Estimate(0, 0, 1), fit_due=Estimate(0, 0, 1),
        )
        assert result.breakdown(Outcome.SDC) == {}
        assert result.errors == 0.0


class TestFitPrediction:
    def test_defaults(self):
        from repro.arch.ecc import EccMode
        from repro.predict.model import FitPrediction

        pred = FitPrediction(workload="w", device="d", ecc=EccMode.ON)
        assert pred.fit_sdc == 0.0
        assert pred.covered_fraction == 0.0


class TestSessionPredictPath:
    def test_predict_returns_note_for_fallbacks(self):
        from repro.arch.ecc import EccMode
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.session import ExperimentSession

        session = ExperimentSession(ExperimentConfig(injections=30, beam_fault_evals=40))
        prediction, note = session.predict("kepler", "sassifi", "FGEMM", EccMode.ON)
        assert "Volta NVBitFI" in note
        assert prediction.workload == "FGEMM"


class TestMainModuleFlatten:
    def test_flatten_dict_and_list(self):
        from repro.experiments.__main__ import _flatten

        assert _flatten([{"a": 1}]) == [{"a": 1}]
        flat = _flatten({"kepler": [{"a": 1}], "volta": [{"b": 2}]})
        assert {"arch": "kepler", "a": 1} in flat
        assert {"arch": "volta", "b": 2} in flat


class TestRfStrikeOnEmptyTable:
    def test_strike_before_any_register_write_is_masked(self):
        """An RF strike landing before the kernel wrote anything has no
        live victim — silently masked, not a crash."""
        from repro.arch.devices import KEPLER_K40C
        from repro.arch.dtypes import DType
        from repro.arch.ecc import EccMode, SecdedModel
        from repro.sim.context import KernelContext
        from repro.sim.injection import StorageStrike

        ctx = KernelContext(
            device=KEPLER_K40C, grid_blocks=1, threads_per_block=32,
            ecc=SecdedModel(mode=EccMode.OFF), rng=np.random.default_rng(0),
        )
        ctx.schedule_strike(StorageStrike(tick=0.0, space="rf", rng=np.random.default_rng(1)))
        assert ctx._vreg_counter == 0  # nothing written yet: empty live window
        ctx.nop()  # applies the strike against an empty register window


class TestConfigErrors:
    def test_shared_alloc_tuple_shape(self):
        from repro.arch.devices import KEPLER_K40C
        from repro.arch.dtypes import DType
        from repro.arch.ecc import EccMode, SecdedModel
        from repro.sim.context import KernelContext

        ctx = KernelContext(
            device=KEPLER_K40C, grid_blocks=2, threads_per_block=32,
            ecc=SecdedModel(mode=EccMode.ON),
        )
        buf = ctx.shared_alloc("t", (4, 8), DType.FP32)
        assert buf.data.shape == (2, 4, 8)

    def test_warp_lane_launch_needs_whole_warps(self):
        from repro.arch.devices import VOLTA_V100
        from repro.arch.ecc import EccMode, SecdedModel
        from repro.sim.context import KernelContext

        with pytest.raises(ConfigurationError):
            KernelContext(
                device=VOLTA_V100, grid_blocks=1, threads_per_block=48,
                ecc=SecdedModel(mode=EccMode.ON), warp_lanes=True,
            )
