"""CLI argument validation, exit codes, the bench regression gate, and the
pinned resolve_rngs deprecation contract."""

import json
import pathlib

import pytest

from repro.cli import check_regression, main as cli_main
from repro.experiments.__main__ import main as experiments_main


# -- campaign subcommand: exit codes ------------------------------------------------


def test_campaign_bad_workload_exits_2(capsys):
    assert cli_main(["campaign", "NOPE", "--injections", "5"]) == 2
    assert "campaign:" in capsys.readouterr().err


def test_campaign_conflicting_resume_and_no_cache(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        cli_main([
            "campaign", "FMXM", "--store", str(tmp_path / "s.sqlite"),
            "--resume", "--no-cache",
        ])
    assert excinfo.value.code == 2


def test_campaign_resume_requires_store():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["campaign", "FMXM", "--resume"])
    assert excinfo.value.code == 2


def test_campaign_negative_retries_rejected():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["campaign", "FMXM", "--retries", "-1"])
    assert excinfo.value.code == 2


def test_campaign_missing_store_directory_exits_2(tmp_path, capsys):
    code = cli_main([
        "campaign", "FMXM", "--injections", "5",
        "--store", str(tmp_path / "missing" / "dir" / "s.sqlite"),
    ])
    assert code == 2
    assert "directory does not exist" in capsys.readouterr().err


def test_campaign_runs_and_caches(tmp_path, capsys):
    store = str(tmp_path / "cli.sqlite")
    out = tmp_path / "summary.json"
    args = [
        "campaign", "FMXM", "--injections", "8", "--seed", "3",
        "--store", store, "--out", str(out),
    ]
    assert cli_main(args) == 0
    first = json.loads(out.read_text())
    assert first["injections"] == 8
    assert first["store"]["commits"] >= 1 and first["store"]["hits"] == 0

    assert cli_main(args) == 0
    warm = json.loads(out.read_text())
    assert warm["outcomes"] == first["outcomes"]
    assert warm["store"]["misses"] == 0 and warm["store"]["commits"] == 0
    assert warm["store"]["tasks_replayed"] == 8
    capsys.readouterr()


# -- experiments CLI flag validation -------------------------------------------------


def test_experiments_cli_conflicting_flags(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        experiments_main([
            "fig1", "--store", str(tmp_path / "s.sqlite"), "--resume", "--no-cache",
        ])
    assert excinfo.value.code == 2


def test_experiments_cli_resume_requires_store():
    with pytest.raises(SystemExit) as excinfo:
        experiments_main(["fig1", "--resume"])
    assert excinfo.value.code == 2


# -- bench --check -------------------------------------------------------------------


def _report(sim_fast=100.0, campaign_fast=50.0):
    return {
        "layers": {
            "sim": {"runs_per_sec": {"fast": sim_fast, "reference": 10.0}},
            "campaign": {"injections_per_sec": {"fast": campaign_fast, "reference": 5.0}},
        }
    }


def test_check_regression_passes_within_tolerance():
    assert check_regression(_report(90.0), _report(100.0), tolerance=0.25) == []


def test_check_regression_flags_beyond_tolerance():
    regressions = check_regression(_report(60.0, 50.0), _report(100.0, 50.0), 0.25)
    assert len(regressions) == 1
    assert "sim.runs_per_sec" in regressions[0]


def test_check_regression_skips_unknown_layers_and_zero_baselines():
    fresh = {"layers": {"new_layer": {"x_per_sec": {"fast": 1.0}}, **_report()["layers"]}}
    base = _report()
    base["layers"]["sim"]["runs_per_sec"]["fast"] = 0.0
    assert check_regression(fresh, base, 0.25) == []


def test_bench_check_without_baseline_exits_2(tmp_path, capsys):
    code = cli_main(["bench", "--check", "--out", str(tmp_path / "none.json")])
    assert code == 2
    assert "no baseline" in capsys.readouterr().err


def test_bench_check_against_synthetic_baselines(tmp_path, capsys):
    bench_args = [
        "bench", "--warmup", "1", "--sim-runs", "2", "--sass-runs", "2",
        "--injections", "5",
    ]
    # a floor-zero baseline can never regress → exit 0
    low = tmp_path / "low.json"
    low.write_text(json.dumps({
        "layers": {"sim": {"runs_per_sec": {"fast": 0.001}},
                   "sass": {"runs_per_sec": {"fast": 0.001}},
                   "campaign": {"injections_per_sec": {"fast": 0.001}}}
    }))
    assert cli_main(bench_args + ["--check", "--out", str(low)]) == 0

    # an absurdly fast baseline always regresses → exit 1
    high = tmp_path / "high.json"
    high.write_text(json.dumps({
        "layers": {"sim": {"runs_per_sec": {"fast": 1e12}}}
    }))
    assert cli_main(bench_args + ["--check", "--out", str(high)]) == 1
    assert "bench regression" in capsys.readouterr().err


def test_check_regression_enforces_baseline_declared_absolute_gates():
    """The committed baseline declares two absolute gates: campaign
    speedup >= 1.0 (when its campaign layer records one) and the batch
    layer's target_injections_per_sec floor."""
    base = {
        "layers": {
            "campaign": {"injections_per_sec": {"fast": 50.0}, "speedup": 1.3},
            "batch": {"injections_per_sec": {"fast": 15000.0},
                      "target_injections_per_sec": 13910.0},
        }
    }
    good = {
        "layers": {
            "campaign": {"injections_per_sec": {"fast": 50.0}, "speedup": 1.2},
            "batch": {"injections_per_sec": {"fast": 14000.0}},
        }
    }
    assert check_regression(good, base, 0.25) == []

    slow_campaign = json.loads(json.dumps(good))
    slow_campaign["layers"]["campaign"]["speedup"] = 0.97
    regressions = check_regression(slow_campaign, base, 0.25)
    assert any("campaign.speedup" in r for r in regressions)

    slow_batch = json.loads(json.dumps(good))
    slow_batch["layers"]["batch"]["injections_per_sec"]["fast"] = 9000.0
    regressions = check_regression(slow_batch, base, 0.25)
    assert any("absolute target" in r for r in regressions)

    # a baseline NOT declaring the gates (synthetic/smoke) never trips them
    bare = {"layers": {"campaign": {"injections_per_sec": {"fast": 0.001}}}}
    assert check_regression(slow_campaign, bare, 0.25) == []


def test_committed_bench_baseline_has_all_layers_and_gates():
    """Smoke over the committed BENCH_simulator.json: every layer records
    either a speedup or a bounded overhead, the batch layer is present
    with its absolute floor met, the campaign fast path is not a
    pessimization, and the service layer stays under its declared
    coordination-overhead ceiling."""
    baseline_path = pathlib.Path(__file__).resolve().parents[1] / "BENCH_simulator.json"
    baseline = json.loads(baseline_path.read_text())
    layers = baseline["layers"]
    assert set(layers) >= {"sim", "sass", "campaign", "replay", "batch", "service"}
    for name, metrics in layers.items():
        if "max_overhead" in metrics:
            # overhead-style layer (the service): a cost with a ceiling,
            # not a speedup — the committed baseline must respect it
            assert float(metrics["overhead"]) <= float(metrics["max_overhead"])
        else:
            assert "speedup" in metrics, f"bench layer {name!r} records no speedup"
            assert float(metrics["speedup"]) > 0.0
    assert float(layers["campaign"]["speedup"]) >= 1.0
    batch = layers["batch"]
    assert float(batch["injections_per_sec"]["fast"]) >= float(
        batch["target_injections_per_sec"]
    )


@pytest.mark.bench
def test_bench_writes_baseline_atomically(tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    code = cli_main([
        "bench", "--out", str(out), "--warmup", "1",
        "--sim-runs", "2", "--sass-runs", "2", "--injections", "5",
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-bench-simulator/1"
    assert not list(tmp_path.glob("*.tmp"))
    capsys.readouterr()


# -- the rngs= deprecation contract (pinned) ----------------------------------------


def test_campaign_runner_rngs_kwarg_warns_deprecation():
    from repro.arch.devices import KEPLER_K40C
    from repro.common.rng import RngFactory
    from repro.faultsim.campaign import CampaignRunner
    from repro.faultsim.frameworks import NvBitFi

    with pytest.warns(DeprecationWarning, match=r"pass seed=<int> instead"):
        runner = CampaignRunner(KEPLER_K40C, NvBitFi(), rngs=RngFactory(7))
    assert runner.rngs.root_seed == 7


def test_resolve_rngs_rejects_both_spellings():
    from repro.arch.devices import KEPLER_K40C
    from repro.common.rng import RngFactory
    from repro.faultsim.campaign import CampaignRunner
    from repro.faultsim.frameworks import NvBitFi

    with pytest.raises(ValueError, match="not both"):
        CampaignRunner(KEPLER_K40C, NvBitFi(), rngs=RngFactory(7), seed=7)
