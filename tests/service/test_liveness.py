"""Worker liveness: registration backoff, heartbeat cadence, oversleep
re-registration, and the dead/alive judgement peers base reclaims on."""

import pytest

from repro.common.errors import StoreError
from repro.service.liveness import REGISTER_ATTEMPTS, WorkerRegistry, default_worker_id
from repro.store import ServicePolicy, open_store
from repro.telemetry import telemetry_session


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["sqlite", "jsonl"])
def store(request, tmp_path):
    handle = open_store(tmp_path / f"liveness.{request.param}", backend=request.param)
    yield handle
    handle.close()


def make_registry(store, worker_id, clock, sleep=None, backoff=0.01):
    return WorkerRegistry(
        store,
        ServicePolicy(),
        worker_id,
        clock=clock,
        sleep=sleep if sleep is not None else (lambda s: None),
        register_backoff=backoff,
    )


def test_default_worker_id_shape():
    import os
    import socket

    base = default_worker_id()
    assert base == f"{socket.gethostname()}:{os.getpid()}"
    assert default_worker_id("w3") == f"{base}.w3"


def test_register_writes_a_readable_heartbeat(store):
    clock = FakeClock()
    registry = make_registry(store, "host:1", clock)
    record = registry.register()
    assert record.worker == "host:1"
    seen = registry.peer("host:1")
    assert seen is not None
    assert (seen.worker, seen.started, seen.beat) == ("host:1", clock.now, clock.now)


def test_register_retries_with_exponential_backoff_then_raises(store, monkeypatch):
    clock = FakeClock()
    sleeps = []
    registry = make_registry(store, "host:1", clock, sleep=sleeps.append, backoff=0.01)
    monkeypatch.setattr(
        store.backend, "put", lambda chunk: (_ for _ in ()).throw(OSError("busy"))
    )
    with telemetry_session() as telemetry:
        with pytest.raises(StoreError, match="could not register after"):
            registry.register()
        retries = telemetry.registry.counters["service.workers.register_retries"]
    assert retries == REGISTER_ATTEMPTS
    assert sleeps == [0.01 * 2**attempt for attempt in range(REGISTER_ATTEMPTS)]


def test_beat_respects_the_cadence(store):
    clock = FakeClock()
    registry = make_registry(store, "host:1", clock)
    registry.register()
    clock.advance(1.0)  # under heartbeat_interval (5s): no write
    assert registry.beat() is False
    assert registry.peer("host:1").beat == clock.now - 1.0
    clock.advance(4.5)  # now past the interval
    assert registry.beat() is True
    assert registry.peer("host:1").beat == clock.now
    assert registry.beat(force=True) is True  # force always writes


def test_overslept_worker_reregisters(store):
    """A worker that wakes after its own death deadline must assume peers
    reclaimed its leases: it re-registers rather than quietly beating."""
    clock = FakeClock()
    registry = make_registry(store, "host:1", clock)
    registry.register()
    clock.advance(ServicePolicy().dead_after + 1.0)
    with telemetry_session() as telemetry:
        assert registry.beat() is True
        assert telemetry.registry.counters["service.workers.reregistered"] == 1
        assert telemetry.registry.counters["service.workers.registered"] == 1
    assert registry.peer("host:1").beat == clock.now


def test_alive_judgement_and_unknown_workers(store):
    clock = FakeClock()
    registry = make_registry(store, "host:1", clock)
    registry.register()
    assert registry.alive("host:1", clock.now)
    # a worker nobody ever heard of is presumed dead — it may have crashed
    # before its first beat landed
    assert not registry.alive("ghost:99", clock.now)
    clock.advance(ServicePolicy().dead_after + 0.1)
    assert not registry.alive("host:1", clock.now)


def test_census_classifies_the_whole_fleet(store):
    clock = FakeClock()
    early = make_registry(store, "host:1", clock)
    early.register()
    clock.advance(ServicePolicy().dead_after + 1.0)  # host:1 goes stale
    late = make_registry(store, "host:2", clock)
    late.register()
    assert late.census(clock.now) == {"host:1": "dead", "host:2": "alive"}
    assert set(late.workers()) == {"host:1", "host:2"}
