"""The service's headline invariant, end to end: a lease-coordinated
campaign — any worker count, either backend, cancelled and resumed,
clean or continue — commits a store bit-identical to a serial run's."""

import time

import pytest

from repro.api import as_device, as_framework
from repro.common.errors import CampaignCancelledError
from repro.exec.engine import LeaseExecutor
from repro.faultsim.campaign import CampaignRunner
from repro.report import extract_store
from repro.service.registry import CampaignRegistry
from repro.store import ExecutionPolicy, ServicePolicy, open_store
from repro.telemetry import telemetry_session
from repro.workloads.registry import get_workload

INJECTIONS = 8  # serial partition: 4 chunks of 2

#: tight knobs so polling waits are milliseconds, not the prod defaults
SERVICE = ServicePolicy(lease_ttl=10.0, heartbeat_interval=0.2, poll_interval=0.02)


def _signature(result):
    return [
        (r.group, r.outcome, r.op, r.bit, r.detail, r.due_cause, r.contained)
        for r in result.records
    ]


def _run(path, backend, executor=None, refresh=False, on_result=None):
    store = open_store(path, backend=backend)
    try:
        runner = CampaignRunner(
            as_device("kepler"),
            as_framework("nvbitfi"),
            seed=1,
            executor=executor,
            policy=ExecutionPolicy(store=store, refresh=refresh, service=SERVICE),
        )
        return runner.run(get_workload("kepler", "FMXM", seed=1), INJECTIONS, on_result)
    finally:
        store.close()


def _model(path):
    return extract_store(path).model()


class TestSerialEquivalence:
    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_lease_run_is_bit_identical_to_serial(self, tmp_path, backend, workers):
        serial_path = tmp_path / f"serial.{backend}"
        lease_path = tmp_path / f"lease.{backend}"
        serial = _run(serial_path, backend)
        leased = _run(lease_path, backend, executor=LeaseExecutor(workers=workers))
        assert _signature(leased) == _signature(serial)
        assert _model(lease_path) == _model(serial_path)


class TestResume:
    def test_continue_mode_replays_without_reexecuting(self, tmp_path):
        path = tmp_path / "svc.sqlite"
        first = _run(path, "sqlite", executor=LeaseExecutor())
        with telemetry_session() as telemetry:
            second = _run(path, "sqlite", executor=LeaseExecutor())
            counters = dict(telemetry.registry.counters)
        assert _signature(second) == _signature(first)
        assert counters.get("service.chunks.executed", 0) == 0
        assert counters.get("service.leases.granted", 0) == 0  # nothing claimed

    def test_clean_mode_reexecutes_everything(self, tmp_path):
        path = tmp_path / "svc.sqlite"
        first = _run(path, "sqlite", executor=LeaseExecutor())
        with telemetry_session() as telemetry:
            second = _run(path, "sqlite", executor=LeaseExecutor(), refresh=True)
            counters = dict(telemetry.registry.counters)
        # DAVOS clean semantics: same answer, recomputed from scratch
        assert _signature(second) == _signature(first)
        assert counters["service.chunks.executed"] == 4


class TestCancellation:
    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    def test_tombstone_stops_claims_but_commits_in_flight_work(
        self, tmp_path, backend
    ):
        path = tmp_path / f"night.{backend}"
        store = open_store(path, backend=backend)
        try:
            registry = CampaignRegistry(store)
            runner = CampaignRunner(
                as_device("kepler"),
                as_framework("nvbitfi"),
                seed=1,
                executor=LeaseExecutor(campaign="night"),
                policy=ExecutionPolicy(store=store, service=SERVICE),
            )
            fired = []

            def cancel_on_first_result(record):
                # on_result fires as the first chunk's results deliver —
                # i.e. mid-campaign, between chunk claims
                if not fired:
                    fired.append(record)
                    registry.cancel("night", reason="operator said stop")

            with pytest.raises(CampaignCancelledError) as err:
                runner.run(
                    get_workload("kepler", "FMXM", seed=1),
                    INJECTIONS,
                    cancel_on_first_result,
                )
        finally:
            store.close()
        exc = err.value
        assert exc.campaign == "night"
        assert exc.reason == "operator said stop"
        assert 0 < exc.committed < exc.total == 4  # partial, durable progress

    def test_resubmission_revives_and_resumes_to_the_serial_answer(self, tmp_path):
        serial_path = tmp_path / "serial.sqlite"
        serial = _run(serial_path, "sqlite")

        path = tmp_path / "night.sqlite"
        store = open_store(path, backend="sqlite")
        try:
            registry = CampaignRegistry(store)
            runner = CampaignRunner(
                as_device("kepler"),
                as_framework("nvbitfi"),
                seed=1,
                executor=LeaseExecutor(campaign="night"),
                policy=ExecutionPolicy(store=store, service=SERVICE),
            )
            workload = get_workload("kepler", "FMXM", seed=1)
            fired = []

            def cancel_once(record):
                if not fired:
                    fired.append(record)
                    registry.cancel("night", reason="pause")

            with pytest.raises(CampaignCancelledError) as err:
                runner.run(workload, INJECTIONS, cancel_once)
            committed_before = err.value.committed
            assert 0 < committed_before < 4

            time.sleep(0.01)  # the reviving submission must postdate the stone
            registry.submit("night", {"workload": "FMXM"})
            assert not registry.cancelled("night")
            with telemetry_session() as telemetry:
                resumed = runner.run(workload, INJECTIONS)
                counters = dict(telemetry.registry.counters)
        finally:
            store.close()
        assert _signature(resumed) == _signature(serial)
        assert _model(path) == _model(serial_path)
        # only the chunks the cancellation cut off were (re-)executed
        assert counters["service.chunks.executed"] == 4 - committed_before
