"""The campaign registry: submit validation, schedule ordering, state
transitions, tombstone cancellation, and resubmission revival."""

import pytest

from repro.common.errors import ConfigurationError
from repro.service.records import (
    CANCELLED,
    COMPLETE,
    PENDING,
    RUNNING,
)
from repro.service.registry import CampaignRegistry
from repro.store import ServicePolicy, open_store  # noqa: F401  (parity import)


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["sqlite", "jsonl"])
def store(request, tmp_path):
    handle = open_store(tmp_path / f"registry.{request.param}", backend=request.param)
    yield handle
    handle.close()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(store, clock):
    return CampaignRegistry(store, clock=clock)


SPEC = {"workload": "FMXM", "injections": 8, "seed": 1}


class TestSubmit:
    def test_submit_round_trips(self, registry, clock):
        entry = registry.submit("nightly", SPEC, priority=3, mode="clean")
        assert (entry.state, entry.priority, entry.mode) == (PENDING, 3, "clean")
        assert entry.submitted == clock.now
        assert registry.get("nightly") == entry

    @pytest.mark.parametrize("name", ["", "a:b", "a/b", "sqlite:x"])
    def test_reserved_characters_rejected(self, registry, name):
        # ':' and '/' would collide with the store's key prefixes and
        # path-like CLI arguments
        with pytest.raises(ConfigurationError, match="campaign name"):
            registry.submit(name, SPEC)

    def test_unknown_mode_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="campaign mode"):
            registry.submit("nightly", SPEC, mode="forever")

    def test_spec_is_copied_not_aliased(self, registry):
        spec = dict(SPEC)
        entry = registry.submit("nightly", spec)
        spec["injections"] = 10_000
        assert entry.spec["injections"] == 8


class TestScheduling:
    def test_entries_order_priority_then_age_then_name(self, registry, clock):
        registry.submit("beta", SPEC, priority=0)
        clock.advance(1.0)
        registry.submit("alpha", SPEC, priority=0)  # younger, same priority
        clock.advance(1.0)
        registry.submit("urgent", SPEC, priority=5)  # youngest but urgent
        registry.submit("urgent2", SPEC, priority=5)  # same instant: name breaks tie
        names = [entry.name for entry in registry.entries()]
        assert names == ["urgent", "urgent2", "beta", "alpha"]

    def test_claimable_excludes_running_and_cancelled(self, registry, clock):
        registry.submit("a", SPEC)
        clock.advance(1.0)
        registry.submit("b", SPEC)
        clock.advance(1.0)
        registry.submit("c", SPEC)
        registry.transition("a", RUNNING)
        clock.advance(1.0)
        registry.cancel("b", reason="obsolete")
        assert [entry.name for entry in registry.claimable()] == ["c"]


class TestTransitions:
    def test_transition_updates_state_error_and_plan(self, registry, clock):
        registry.submit("nightly", SPEC)
        clock.advance(5.0)
        entry = registry.transition("nightly", RUNNING, chunks=["a" * 64, "b" * 64])
        assert entry.state == RUNNING
        assert entry.updated == clock.now
        assert entry.chunks == ["a" * 64, "b" * 64]
        failed = registry.transition("nightly", "failed", error="boom")
        assert (failed.state, failed.error) == ("failed", "boom")

    def test_transition_of_unknown_campaign_raises(self, registry):
        with pytest.raises(ConfigurationError, match="never submitted"):
            registry.transition("ghost", RUNNING)

    def test_transition_to_unknown_state_raises(self, registry):
        registry.submit("nightly", SPEC)
        with pytest.raises(ConfigurationError, match="unknown campaign state"):
            registry.transition("nightly", "paused")


class TestCancellation:
    def test_cancel_is_a_tombstone_workers_observe(self, registry, clock):
        registry.submit("nightly", SPEC)
        assert not registry.cancelled("nightly")
        clock.advance(1.0)
        stone = registry.cancel("nightly", reason="wrong seed")
        assert stone.reason == "wrong seed"
        assert registry.cancelled("nightly")
        # idempotent: a second tombstone changes nothing observable
        registry.cancel("nightly")
        assert registry.cancelled("nightly")

    def test_resubmission_revives_a_cancelled_campaign(self, registry, clock):
        """The store is append-biased — no tombstone deletion.  A tombstone
        older than the entry's latest submission is simply spent."""
        registry.submit("nightly", SPEC)
        clock.advance(1.0)
        registry.cancel("nightly")
        assert registry.cancelled("nightly")
        clock.advance(1.0)
        revived = registry.submit("nightly", SPEC)
        assert revived.state == PENDING
        assert not registry.cancelled("nightly")
        assert [entry.name for entry in registry.claimable()] == ["nightly"]

    def test_tombstone_on_never_submitted_name_still_reads_cancelled(self, registry):
        # the registry-level primitive is unguarded; the CLI layer is what
        # refuses typo'd names (see tests/service/test_cli_service.py)
        registry.cancel("ghost")
        assert registry.cancelled("ghost")


class TestStatus:
    def test_unknown_campaign_status(self, registry):
        assert registry.status("ghost") == {"name": "ghost", "state": "unknown"}

    def test_status_counts_chunk_progress(self, registry, store, clock):
        registry.submit("nightly", SPEC, priority=1)
        done, bad, missing = "a" * 64, "b" * 64, "c" * 64
        registry.transition("nightly", RUNNING, chunks=[done, bad, missing])
        store.put_chunk(done, "campaign", [1, 2], None)
        store.quarantine(bad, "campaign", "poison", attempts=2)
        row = registry.status("nightly")
        assert row["state"] == RUNNING
        assert row["chunks"] == {"total": 3, "done": 1, "quarantined": 1}

    def test_tombstone_wins_over_entry_state(self, registry, clock):
        """A racing worker may write COMPLETE after the cancel landed; the
        tombstone is the irreversible mark, so status reports cancelled."""
        registry.submit("nightly", SPEC)
        registry.transition("nightly", COMPLETE)
        clock.advance(1.0)
        registry.cancel("nightly")
        assert registry.status("nightly")["state"] == CANCELLED
