"""The service CLI verbs, in process: submit → status → serve → status →
cancel → status → resubmit, plus the typo-guard exit codes."""

import json

import pytest

from repro.cli import main as cli_main

INJECTIONS = "6"


def _out(capsys):
    return json.loads(capsys.readouterr().out)


def test_submit_serve_status_cancel_round_trip(tmp_path, capsys):
    store = str(tmp_path / "svc.sqlite")

    assert cli_main([
        "submit", "night", "FMXM", "--store", store,
        "--injections", INJECTIONS, "--seed", "2", "--priority", "3",
    ]) == 0
    entry = _out(capsys)
    assert entry["name"] == "night" and entry["state"] == "pending"
    assert entry["priority"] == 3
    assert entry["spec"]["injections"] == int(INJECTIONS)

    assert cli_main(["status", "night", "--store", store]) == 0
    assert _out(capsys)[0]["state"] == "pending"

    assert cli_main([
        "serve", "--store", store, "--workers", "1",
        "--heartbeat-interval", "0.2",
    ]) == 0
    rows = _out(capsys)
    assert len(rows) == 1
    row = rows[0]
    assert (row["name"], row["state"]) == ("night", "complete")
    assert row["injections"] == int(INJECTIONS)
    assert sum(row["outcomes"].values()) == int(INJECTIONS)

    assert cli_main(["status", "night", "--store", store]) == 0
    done = _out(capsys)[0]
    assert done["state"] == "complete"
    assert done["chunks"]["done"] == done["chunks"]["total"] > 0
    assert done["chunks"]["quarantined"] == 0

    assert cli_main([
        "cancel", "night", "--store", store, "--reason", "beam time over",
    ]) == 0
    stone = _out(capsys)
    assert (stone["name"], stone["state"]) == ("night", "cancelled")
    assert stone["reason"] == "beam time over"
    assert cli_main(["status", "night", "--store", store]) == 0
    assert _out(capsys)[0]["state"] == "cancelled"

    # resubmission revives the name; serve drains it again (continue mode:
    # every chunk replays from the store, so this is quick)
    assert cli_main([
        "submit", "night", "FMXM", "--store", store,
        "--injections", INJECTIONS, "--seed", "2",
    ]) == 0
    assert _out(capsys)["state"] == "pending"
    assert cli_main(["serve", "--store", store]) == 0
    assert _out(capsys)[0]["state"] == "complete"


def test_serve_with_no_pending_campaigns_is_a_quiet_no_op(tmp_path, capsys):
    store = str(tmp_path / "svc.sqlite")
    assert cli_main(["submit", "night", "FMXM", "--store", store]) == 0
    assert cli_main(["cancel", "night", "--store", store]) == 0
    capsys.readouterr()
    assert cli_main(["serve", "--store", store]) == 0
    assert _out(capsys) == []


class TestExitCodes:
    def test_status_on_missing_store_exits_2(self, tmp_path, capsys):
        code = cli_main(["status", "--store", str(tmp_path / "nope.sqlite")])
        assert code == 2
        assert "no store at" in capsys.readouterr().err

    def test_cancel_on_missing_store_exits_2(self, tmp_path, capsys):
        code = cli_main(["cancel", "x", "--store", str(tmp_path / "nope.sqlite")])
        assert code == 2
        assert "no store at" in capsys.readouterr().err

    def test_serve_on_missing_store_exits_2(self, tmp_path, capsys):
        code = cli_main(["serve", "--store", str(tmp_path / "nope.sqlite")])
        assert code == 2
        assert "no store at" in capsys.readouterr().err

    def test_cancel_of_never_submitted_name_exits_2(self, tmp_path, capsys):
        store = str(tmp_path / "svc.sqlite")
        assert cli_main(["submit", "night", "FMXM", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["cancel", "nihgt", "--store", store]) == 2
        assert "never submitted" in capsys.readouterr().err

    def test_status_of_unknown_name_exits_2(self, tmp_path, capsys):
        store = str(tmp_path / "svc.sqlite")
        assert cli_main(["submit", "night", "FMXM", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["status", "ghost", "--store", store]) == 2
        assert "never submitted" in capsys.readouterr().err

    def test_submit_with_reserved_name_exits_2(self, tmp_path, capsys):
        store = str(tmp_path / "svc.sqlite")
        assert cli_main(["submit", "a:b", "FMXM", "--store", store]) == 2
        assert "campaign name" in capsys.readouterr().err

    def test_submit_rejects_nonpositive_injections(self, tmp_path):
        store = str(tmp_path / "svc.sqlite")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["submit", "night", "FMXM", "--store", store,
                      "--injections", "0"])
        assert excinfo.value.code == 2

    def test_serve_chaos_flag_requires_two_workers(self, tmp_path):
        store = str(tmp_path / "svc.sqlite")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--store", store, "--chaos-kill-after", "1"])
        assert excinfo.value.code == 2
