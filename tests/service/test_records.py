"""Service record codecs: every coordination record round-trips through
``to_chunk``/``from_chunk`` and through both durable backends, its keys
can never collide with chunk fingerprints, and none of it leaks into a
store's logical (report-visible) content."""

import pytest

from repro.report.extract import INTERNAL_KINDS
from repro.service.records import (
    CAMPAIGN_PREFIX,
    CampaignEntry,
    HeartbeatRecord,
    KIND_CAMPAIGN,
    KIND_HEARTBEAT,
    KIND_LEASE,
    KIND_TOMBSTONE,
    LEASE_PREFIX,
    LeaseRecord,
    SERVICE_KINDS,
    TOMBSTONE_PREFIX,
    TombstoneRecord,
    WORKER_PREFIX,
    campaign_key,
    lease_key,
    tombstone_key,
    worker_key,
)
from repro.store import DONE, JsonlBackend, SQLiteBackend

BACKENDS = {"sqlite": SQLiteBackend, "jsonl": JsonlBackend}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    suffix = ".jsonl" if request.param == "jsonl" else ".sqlite"
    b = BACKENDS[request.param](tmp_path / f"store{suffix}")
    yield b
    b.close()


LEASE = LeaseRecord(
    chunk="a" * 64,
    owner="host:123.w0",
    epoch=3,
    granted=100.0,
    deadline=130.0,
    released=False,
    victims=["host:99.w1", "host:98.w0"],
)
HEARTBEAT = HeartbeatRecord(
    worker="host:123.w0", pid=123, host="host", started=90.0, beat=110.0, interval=5.0
)
TOMBSTONE = TombstoneRecord(campaign="nightly", reason="wrong seed", requested=120.0)
ENTRY = CampaignEntry(
    name="nightly",
    spec={"workload": "FMXM", "injections": 40, "seed": 7},
    priority=2,
    mode="clean",
    state="running",
    submitted=80.0,
    updated=115.0,
    error="",
    chunks=["a" * 64, "b" * 64],
)

RECORDS = [
    ("lease", LEASE, LeaseRecord, KIND_LEASE),
    ("heartbeat", HEARTBEAT, HeartbeatRecord, KIND_HEARTBEAT),
    ("tombstone", TOMBSTONE, TombstoneRecord, KIND_TOMBSTONE),
    ("campaign", ENTRY, CampaignEntry, KIND_CAMPAIGN),
]


@pytest.mark.parametrize("label,original,cls,kind", RECORDS, ids=[r[0] for r in RECORDS])
def test_chunk_codec_round_trip(label, original, cls, kind):
    chunk = original.to_chunk()
    assert chunk.kind == kind
    assert chunk.status == DONE
    assert chunk.payload is None  # payload channel reserved for results
    assert cls.from_chunk(chunk) == original


@pytest.mark.parametrize("label,original,cls,kind", RECORDS, ids=[r[0] for r in RECORDS])
def test_backend_round_trip(backend, label, original, cls, kind):
    backend.put(original.to_chunk())
    stored = backend.get(original.key())
    assert stored is not None and stored.kind == kind
    assert cls.from_chunk(stored) == original


def test_backend_round_trip_survives_restart(tmp_path):
    for name, backend_cls in BACKENDS.items():
        path = tmp_path / f"svc-{name}"
        first = backend_cls(path)
        for _, original, _, _ in RECORDS:
            first.put(original.to_chunk())
        first.close()
        second = backend_cls(path)
        for _, original, cls, _ in RECORDS:
            assert cls.from_chunk(second.get(original.key())) == original
        second.close()


def test_keys_cannot_collide_with_fingerprints():
    # chunk fingerprints are bare hex; every service key carries a colon
    for prefix in (LEASE_PREFIX, WORKER_PREFIX, CAMPAIGN_PREFIX, TOMBSTONE_PREFIX):
        assert ":" in prefix
    assert lease_key("a" * 64) == "lease:" + "a" * 64
    assert worker_key("h:1.w0") == "worker:h:1.w0"
    assert campaign_key("nightly") == "campaign:nightly"
    assert tombstone_key("nightly") == "tombstone:nightly"


def test_service_kinds_are_report_internal():
    """Coordination rows are bookkeeping, not logical store content: the
    report extractor must skip all of them, or a service-mode store would
    never ``report --diff`` clean against a serial run's."""
    for kind in SERVICE_KINDS:
        assert kind in INTERNAL_KINDS


def test_lease_active_and_expired_windows():
    lease = LeaseRecord(chunk="c" * 64, owner="w", epoch=1, granted=0.0, deadline=30.0)
    assert lease.active(now=29.9) and not lease.expired(29.9)
    assert lease.active(now=30.0)  # inclusive deadline
    assert lease.expired(now=30.1) and not lease.active(30.1)
    released = LeaseRecord(
        chunk="c" * 64, owner="w", epoch=1, granted=0.0, deadline=30.0, released=True
    )
    assert not released.active(10.0) and not released.expired(100.0)


def test_heartbeat_staleness():
    beat = HeartbeatRecord(worker="w", pid=1, host="h", started=0.0, beat=50.0, interval=5.0)
    assert not beat.stale(now=64.9, dead_after=15.0)
    assert beat.stale(now=65.1, dead_after=15.0)
