"""The lease table under a fake clock: claims, renewal, expiry, victim
tracking, and the two poison-chunk escalation paths.

Time never passes for real in this file — every table and registry runs
on one shared :class:`FakeClock`, so TTL expiry, heartbeat staleness and
the dead/alive judgement are all exact."""

import pytest

from repro.service.lease import LeaseTable
from repro.service.liveness import WorkerRegistry
from repro.service.records import LeaseRecord, lease_key
from repro.store import QUARANTINED, ServicePolicy, open_store
from repro.telemetry import telemetry_session

FP = "f" * 64
KIND = "campaign"


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["sqlite", "jsonl"])
def store(request, tmp_path):
    handle = open_store(tmp_path / f"leases.{request.param}", backend=request.param)
    yield handle
    handle.close()


@pytest.fixture
def clock():
    return FakeClock()


def make_table(store, owner, clock, liveness=True, **overrides):
    service = ServicePolicy(**overrides) if overrides else ServicePolicy()
    registry = (
        WorkerRegistry(store, service, owner, clock=clock) if liveness else None
    )
    return LeaseTable(store, service, owner, liveness=registry, clock=clock)


class TestClaims:
    def test_fresh_claim_and_round_trip(self, store, clock):
        table = make_table(store, "alice", clock)
        lease = table.acquire(FP, KIND)
        assert lease is not None
        assert (lease.owner, lease.epoch, lease.victims) == ("alice", 1, [])
        assert lease.deadline == clock.now + table.service.lease_ttl
        assert table.load(FP) == lease

    def test_active_lease_blocks_other_owners(self, store, clock):
        alice = make_table(store, "alice", clock)
        bob = make_table(store, "bob", clock)
        assert alice.acquire(FP, KIND) is not None
        clock.advance(1.0)  # well inside the TTL
        assert bob.acquire(FP, KIND) is None
        assert alice.load(FP).owner == "alice"  # untouched

    def test_renew_extends_deadline_same_epoch(self, store, clock):
        table = make_table(store, "alice", clock)
        lease = table.acquire(FP, KIND)
        clock.advance(10.0)
        renewed = table.renew(lease)
        assert renewed.epoch == lease.epoch
        assert renewed.deadline == clock.now + table.service.lease_ttl
        assert table.load(FP) == renewed

    def test_released_lease_is_immediately_reclaimable(self, store, clock):
        alice = make_table(store, "alice", clock)
        bob = make_table(store, "bob", clock)
        alice.release(alice.acquire(FP, KIND))
        # no clock advance: release, not expiry, freed the chunk
        lease = bob.acquire(FP, KIND)
        assert lease is not None
        assert (lease.owner, lease.epoch) == ("bob", 2)
        assert lease.victims == []  # a clean hand-off blames nobody

    def test_lost_race_detected_by_read_back(self, store, clock, monkeypatch):
        """If a rival's claim lands between our write and our read-back,
        the verify step must tell us we lost — never both winning."""
        table = make_table(store, "alice", clock)
        rival = LeaseRecord(
            chunk=FP, owner="rival", epoch=1,
            granted=clock.now, deadline=clock.now + 30.0,
        )
        original_refresh = store.refresh

        def refresh_with_rival_write():
            applied = original_refresh()
            store.backend.put(rival.to_chunk())  # last write wins
            return applied

        monkeypatch.setattr(store, "refresh", refresh_with_rival_write)
        with telemetry_session() as telemetry:
            assert table.acquire(FP, KIND) is None
            assert telemetry.registry.counters["service.leases.lost_race"] == 1
        monkeypatch.undo()
        assert table.load(FP).owner == "rival"


class TestExpiryAndVictims:
    def test_dead_owner_becomes_victim_on_reclaim(self, store, clock):
        alice = make_table(store, "alice", clock)
        bob = make_table(store, "bob", clock)
        alice.liveness.register()
        assert alice.acquire(FP, KIND) is not None
        # alice dies: no more beats; lease TTL (30s) and heartbeat
        # dead_after (15s) both elapse
        clock.advance(31.0)
        with telemetry_session() as telemetry:
            lease = bob.acquire(FP, KIND)
            counters = dict(telemetry.registry.counters)
        assert lease is not None
        assert (lease.owner, lease.epoch, lease.victims) == ("bob", 2, ["alice"])
        assert counters["service.leases.expired"] == 1
        assert counters["service.leases.reclaimed"] == 1
        assert "service.leases.stolen" not in counters

    def test_live_but_slow_owner_is_stolen_from_not_blamed(self, store, clock):
        alice = make_table(store, "alice", clock)
        bob = make_table(store, "bob", clock)
        alice.liveness.register()
        assert alice.acquire(FP, KIND) is not None
        clock.advance(31.0)
        alice.liveness.beat()  # alive, merely over the lease TTL
        with telemetry_session() as telemetry:
            lease = bob.acquire(FP, KIND)
            counters = dict(telemetry.registry.counters)
        assert lease is not None
        assert lease.victims == []  # stolen, nobody died
        assert counters["service.leases.stolen"] == 1
        assert "service.leases.reclaimed" not in counters

    def test_chunk_killing_two_workers_escalates_to_quarantine(self, store, clock):
        """Two distinct dead owners is the victim threshold: the chunk is
        poison (it kills workers), so the third claimant refuses it and
        hands it to the store's quarantine instead."""
        alice = make_table(store, "alice", clock)
        bob = make_table(store, "bob", clock)
        carol = make_table(store, "carol", clock)
        alice.liveness.register()
        assert alice.acquire(FP, KIND) is not None
        clock.advance(31.0)  # alice dead, lease expired
        bob.liveness.register()
        assert bob.acquire(FP, KIND).victims == ["alice"]
        clock.advance(31.0)  # bob dead too
        with telemetry_session() as telemetry:
            assert carol.acquire(FP, KIND) is None
            assert telemetry.registry.counters["service.chunks.escalated"] == 1
        record = store.backend.get(FP)
        assert record is not None and record.status == QUARANTINED
        assert record.error.startswith("ServiceEscalation: poison chunk")
        assert "alice" in record.error and "bob" in record.error

    def test_same_victim_counted_once_until_epoch_budget(self, store, clock):
        """One worker dying repeatedly on a chunk dedups to a single
        victim, so the epoch budget — not the victim threshold — is what
        finally quarantines it."""
        table = make_table(
            store, "alice", clock, liveness=False, max_lease_epochs=3
        )  # liveness=None: every expired owner is presumed dead
        for expected_epoch in (1, 2, 3):
            lease = table.acquire(FP, KIND)
            assert lease is not None and lease.epoch == expected_epoch
            assert lease.victims == ([] if expected_epoch == 1 else ["alice"])
            clock.advance(31.0)
        with telemetry_session() as telemetry:
            assert table.acquire(FP, KIND) is None  # epoch 4 > budget of 3
            assert telemetry.registry.counters["service.chunks.escalated"] == 1
        record = store.backend.get(FP)
        assert record.status == QUARANTINED
        assert "epoch budget exhausted" in record.error

    def test_clean_releases_never_escalate(self, store, clock):
        """Epoch count alone is not guilt: a chunk whose every lease was
        cleanly released keeps being claimable far past the epoch budget
        (this is what lets clean-mode resubmissions re-run a store)."""
        table = make_table(store, "alice", clock, max_lease_epochs=3)
        for expected_epoch in range(1, 10):
            lease = table.acquire(FP, KIND)
            assert lease is not None and lease.epoch == expected_epoch
            assert lease.victims == []
            table.release(lease)
            clock.advance(100.0)  # long past both TTL and dead_after
        assert store.backend.get(FP) is None  # never quarantined
