"""JSONL torn-tail tolerance for the service's coordination records.

The chunk-record versions of these guarantees live in
``tests/store/test_backends.py``; the service adds new record kinds
(lease / heartbeat / tombstone) that are written far more often — every
claim, beat and cancel — so a worker killed mid-``write(2)`` leaving a
half line is the *expected* steady-state hazard, not a corner case:

* a torn trailing line is ignored on reload and the file stays appendable;
* the offset-tracked ``refresh()`` leaves a torn tail unconsumed and picks
  the record up on a later refresh once the line completes;
* an unparseable *buried* line (torn, then written over by a peer whose
  append interleaved) is skipped without losing the records around it.
"""

import pytest

from repro.service.records import (
    HeartbeatRecord,
    LeaseRecord,
    TombstoneRecord,
)
from repro.store import JsonlBackend

RECORDS = {
    "lease": LeaseRecord(
        chunk="a" * 64, owner="host:1.w0", epoch=2, granted=10.0, deadline=40.0,
        victims=["host:9.w1"],
    ),
    "heartbeat": HeartbeatRecord(
        worker="host:1.w0", pid=1, host="host", started=5.0, beat=35.0, interval=5.0
    ),
    "tombstone": TombstoneRecord(campaign="nightly", reason="beam time over", requested=50.0),
}
SPARES = {
    "lease": LeaseRecord(
        chunk="b" * 64, owner="host:2.w0", epoch=1, granted=11.0, deadline=41.0
    ),
    "heartbeat": HeartbeatRecord(
        worker="host:2.w0", pid=2, host="host", started=6.0, beat=36.0, interval=5.0
    ),
    "tombstone": TombstoneRecord(campaign="weekly", reason="", requested=51.0),
}


def encoded_line(tmp_path, record, tag):
    """The exact bytes one ``put`` of this record appends (incl. newline)."""
    path = tmp_path / f"scratch-{tag}.jsonl"
    scratch = JsonlBackend(path)
    scratch.put(record.to_chunk())
    scratch.close()
    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) == 1 and lines[0].endswith(b"\n")
    return lines[0]


@pytest.mark.parametrize("label", sorted(RECORDS))
def test_torn_tail_ignored_on_reload_and_file_stays_appendable(tmp_path, label):
    record, spare = RECORDS[label], SPARES[label]
    path = tmp_path / "coord.jsonl"
    backend = JsonlBackend(path)
    backend.put(record.to_chunk())
    backend.close()
    # a worker SIGKILLed mid-write leaves a half line with no newline
    torn = encoded_line(tmp_path, spare, label)[:17]
    with open(path, "ab") as f:
        f.write(torn)

    reopened = JsonlBackend(path)
    assert type(record).from_chunk(reopened.get(record.key())) == record
    assert reopened.get(spare.key()) is None  # the torn row does not exist
    reopened.put(spare.to_chunk())  # still appendable past the tear
    reopened.close()

    final = JsonlBackend(path)
    assert type(record).from_chunk(final.get(record.key())) == record
    assert type(spare).from_chunk(final.get(spare.key())) == spare
    final.close()


@pytest.mark.parametrize("label", sorted(RECORDS))
def test_refresh_leaves_torn_tail_pending_until_complete(tmp_path, label):
    """The coordination loop's view: a reader's ``refresh`` must neither
    consume nor trip over a peer's half-written line, and must surface the
    record once the rest of the line lands."""
    record, spare = RECORDS[label], SPARES[label]
    path = tmp_path / "coord.jsonl"
    reader = JsonlBackend(path)
    writer = JsonlBackend(path)

    writer.put(record.to_chunk())
    reader.refresh()
    assert type(record).from_chunk(reader.get(record.key())) == record

    line = encoded_line(tmp_path, spare, label)
    head, tail = line[:23], line[23:]
    with open(path, "ab") as f:
        f.write(head)
    reader.refresh()
    assert reader.get(spare.key()) is None  # incomplete: retried later
    with open(path, "ab") as f:
        f.write(tail)
    reader.refresh()
    assert type(spare).from_chunk(reader.get(spare.key())) == spare
    reader.close()
    writer.close()


def test_buried_garbage_line_is_skipped(tmp_path):
    """A complete-but-unparseable line between two good records loses only
    itself: the records around it still load."""
    first, second = RECORDS["lease"], SPARES["lease"]
    path = tmp_path / "coord.jsonl"
    backend = JsonlBackend(path)
    backend.put(first.to_chunk())
    backend.close()
    with open(path, "ab") as f:
        f.write(b'{"fingerprint": "lease:trunc\n')  # torn, then newline landed
    with open(path, "ab") as f:
        f.write(encoded_line(tmp_path, second, "buried"))

    reopened = JsonlBackend(path)
    assert LeaseRecord.from_chunk(reopened.get(first.key())) == first
    assert LeaseRecord.from_chunk(reopened.get(second.key())) == second
    reopened.close()
