"""Chaos: SIGKILL a service worker while it *holds* a lease.

The most adversarial death point the protocol covers — an unexpired claim
on an unevaluated chunk, no release, no goodbye heartbeat.  The surviving
worker must wait out the TTL, judge the owner dead, reclaim the chunk
with the victim on record, and finish the campaign — leaving a store
bit-identical to an undisturbed serial run, on both backends, with every
committed chunk's retry budget untouched."""

import pytest

from repro.api import as_device, as_framework
from repro.exec.engine import LeaseExecutor
from repro.faultsim.campaign import CampaignRunner
from repro.report import extract_store
from repro.service.records import KIND_LEASE, LeaseRecord
from repro.store import DONE, ExecutionPolicy, ServicePolicy, open_store
from repro.telemetry import telemetry_session
from repro.workloads.registry import get_workload

INJECTIONS = 8  # serial partition: 4 chunks of 2

#: short TTL/heartbeat so death detection takes ~1s, not the prod 30s
CHAOS = ServicePolicy(lease_ttl=1.0, heartbeat_interval=0.2, poll_interval=0.02)


def _signature(result):
    return [
        (r.group, r.outcome, r.op, r.bit, r.detail, r.due_cause, r.contained)
        for r in result.records
    ]


def _run(path, backend, executor=None):
    store = open_store(path, backend=backend)
    try:
        runner = CampaignRunner(
            as_device("kepler"),
            as_framework("nvbitfi"),
            seed=1,
            executor=executor,
            policy=ExecutionPolicy(store=store, service=CHAOS),
        )
        return runner.run(get_workload("kepler", "FMXM", seed=1), INJECTIONS)
    finally:
        store.close()


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_sigkilled_worker_mid_lease_recovers_bit_identical(tmp_path, backend):
    serial_path = tmp_path / f"serial.{backend}"
    serial = _run(serial_path, backend)

    chaos_path = tmp_path / f"chaos.{backend}"
    with telemetry_session() as telemetry:
        chaos = _run(
            chaos_path,
            backend,
            # worker 0 SIGKILLs itself while holding its first lease
            executor=LeaseExecutor(
                workers=2, service=CHAOS, chaos_kill_after=0, chaos_worker=0
            ),
        )
        counters = dict(telemetry.registry.counters)

    # the kill fired and the supervisor saw the death
    assert counters.get("service.workers.died", 0) >= 1
    # ...and the campaign still finished, bit-identical to serial
    assert _signature(chaos) == _signature(serial)
    assert extract_store(chaos_path).model() == extract_store(serial_path).model()

    store = open_store(chaos_path, backend=backend)
    try:
        store.refresh()
        leases = [
            LeaseRecord.from_chunk(record)
            for record in store.iter_chunks(kind=KIND_LEASE)
        ]
        victims = sorted({v for lease in leases for v in lease.victims})
        # dead worker vs poison chunk: the death is evidence on the lease,
        # not a strike against the chunk's retry budget — every committed
        # chunk records a single evaluation attempt
        attempts = [
            record.attempts
            for record in store.iter_chunks(status=DONE)
            if record.kind not in ("lease", "heartbeat", "tombstone", "campaign_entry")
        ]
    finally:
        store.close()
    assert victims, "the dead worker never made it onto a lease's victim list"
    assert all(victim.endswith(".w0") for victim in victims)
    assert attempts and set(attempts) == {1}
