"""ExecutionTrace accounting and summaries."""

import pytest

from repro.arch.isa import OpCategory, OpClass
from repro.sim.trace import ExecutionTrace


def _trace():
    t = ExecutionTrace()
    t.record(OpClass.FFMA, 100, 100 / 32)
    t.record(OpClass.LDG, 50, 50 / 32)
    t.record(OpClass.IADD, 50, 50 / 32)
    return t


class TestRecording:
    def test_totals(self):
        t = _trace()
        assert t.total_instances == 200
        assert t.total_issues == pytest.approx(200 / 32)

    def test_negative_rejected_at_validate(self):
        # record() is the hot loop and no longer checks; validate() runs at
        # flush/merge boundaries and rejects the impossible state there
        t = ExecutionTrace()
        t.record(OpClass.FADD, -1, 0)
        with pytest.raises(ValueError):
            t.validate()

    def test_negative_rejected_at_merge(self):
        t = ExecutionTrace()
        t.record(OpClass.FADD, -1, 0)
        with pytest.raises(ValueError):
            t.merged_with(ExecutionTrace())
        with pytest.raises(ValueError):
            ExecutionTrace().merged_with(t)

    def test_validate_passes_and_chains(self):
        t = _trace()
        assert t.validate() is t

    def test_mix_sums_to_one(self):
        mix = _trace().mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix[OpClass.FFMA] == pytest.approx(0.5)

    def test_category_mix(self):
        cats = _trace().category_mix()
        assert cats[OpCategory.FMA] == pytest.approx(0.5)
        assert cats[OpCategory.LDST] == pytest.approx(0.25)
        assert cats[OpCategory.INT] == pytest.approx(0.25)
        assert cats[OpCategory.MMA] == 0.0

    def test_empty_mix(self):
        assert ExecutionTrace().mix() == {}

    def test_instances_of(self):
        t = _trace()
        assert t.instances_of((OpClass.FFMA, OpClass.IADD)) == 150


class TestActivity:
    def test_default_activity_is_one(self):
        assert ExecutionTrace().activity_factor == 1.0

    def test_partial_activity(self):
        t = ExecutionTrace()
        t.record_activity(1.0, 2.0)
        t.record_activity(2.0, 2.0)
        assert t.activity_factor == pytest.approx(0.75)

    def test_clamped_to_one(self):
        t = ExecutionTrace()
        t.record_activity(5.0, 2.0)
        assert t.activity_factor == 1.0


class TestMerge:
    def test_merge_adds_counts(self):
        a, b = _trace(), _trace()
        b.global_bytes = 100
        b.host_syncs = 3
        merged = a.merged_with(b)
        assert merged.total_instances == 400
        assert merged.global_bytes == 100
        assert merged.host_syncs == 3
        assert merged.issues[OpClass.FFMA] == pytest.approx(2 * 100 / 32)

    def test_merge_leaves_originals(self):
        a, b = _trace(), _trace()
        a.merged_with(b)
        assert a.total_instances == 200

    def test_merge_registers_written_takes_max(self):
        # registers_written is a register-pressure proxy (high-water vreg
        # ordinal of one context), not an event count: merging must not sum
        a, b = _trace(), _trace()
        a.registers_written = 100
        b.registers_written = 40
        assert a.merged_with(b).registers_written == 100
        assert b.merged_with(a).registers_written == 100

    def test_as_dict_keys(self):
        d = _trace().as_dict()
        assert {"total_instances", "total_issues", "activity_factor"} <= set(d)
