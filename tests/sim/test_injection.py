"""Fault injection plumbing: plans, claims, fault models, strikes."""

import numpy as np
import pytest

from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.arch.ecc import EccMode, SecdedModel
from repro.sim.context import (
    CONTROL_FAULT_DATA,
    CONTROL_FAULT_DUE,
    CONTROL_FAULT_MASKED,
)
from repro.sim.exceptions import EccDoubleBitError, GpuDeviceException, IllegalAddressError
from repro.sim.injection import (
    FaultModel,
    InjectionMode,
    InjectionPlan,
    StorageStrike,
    gpr_write_stream,
    opclass_stream,
)

from tests.sim.conftest import make_ctx


def _plan(mode=InjectionMode.OUTPUT_VALUE, stream=None, target=0, model=FaultModel.SINGLE_BIT, seed=0):
    return InjectionPlan(
        mode=mode,
        stream=stream if stream is not None else gpr_write_stream,
        target_index=target,
        fault_model=model,
        rng=np.random.default_rng(seed),
    )


class TestStreams:
    def test_gpr_stream_includes_loads_excludes_stores(self):
        assert gpr_write_stream(OpClass.LDG)
        assert gpr_write_stream(OpClass.FFMA)
        assert not gpr_write_stream(OpClass.STG)
        assert not gpr_write_stream(OpClass.SETP)  # predicate, not GPR
        assert not gpr_write_stream(OpClass.BRA)

    def test_opclass_stream(self):
        stream = opclass_stream(OpClass.FADD, OpClass.FMUL)
        assert stream(OpClass.FADD) and not stream(OpClass.FFMA)

    def test_empty_opclass_stream_rejected(self):
        with pytest.raises(ValueError):
            opclass_stream()


class TestPlanClaims:
    def test_claim_fires_within_batch(self):
        plan = _plan(stream=opclass_stream(OpClass.FADD), target=70)
        assert plan.claim(OpClass.FADD, 64) is None
        offset = plan.claim(OpClass.FADD, 64)
        assert offset == 6.0

    def test_claim_skips_uncovered_ops(self):
        plan = _plan(stream=opclass_stream(OpClass.FADD), target=0)
        assert plan.claim(OpClass.IADD, 64) is None
        assert plan.stream_count == 0

    def test_address_mode_covers_ldst_only(self):
        plan = _plan(mode=InjectionMode.ADDRESS, stream=opclass_stream(OpClass.LDG), target=0)
        assert plan.covers(OpClass.STG)
        assert not plan.covers(OpClass.FADD)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            _plan(target=-1)

    def test_storage_modes_rejected_as_plans(self):
        with pytest.raises(ValueError):
            _plan(mode=InjectionMode.REGISTER_FILE)


class TestOutputInjection:
    def test_single_bit_flips_one_lane(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.FADD), target=5)
        ctx.arm(plan)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        out = ctx.add(a, 1.0)
        assert plan.fired
        assert plan.record.op is OpClass.FADD
        corrupted = np.flatnonzero(out.data != 2.0)
        assert list(corrupted) == [5]
        assert plan.record.lane == 5

    def test_zero_value_model(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.FADD), target=3, model=FaultModel.ZERO_VALUE)
        ctx.arm(plan)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        out = ctx.add(a, 1.0)
        assert out.data[3] == 0.0

    def test_double_bit_model_changes_two_bits(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.IADD), target=0, model=FaultModel.DOUBLE_BIT)
        ctx.arm(plan)
        a = ctx.from_array(np.zeros(64, dtype=np.int32), DType.INT32)
        out = ctx.add(a, 0)
        assert bin(int(out.data[0]) & 0xFFFFFFFF).count("1") == 2

    def test_random_value_model(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.IADD), target=0, model=FaultModel.RANDOM_VALUE)
        ctx.arm(plan)
        a = ctx.from_array(np.zeros(64, dtype=np.int32), DType.INT32)
        out = ctx.add(a, 0)
        assert (out.data != 0).sum() <= 1  # lane 0 very likely corrupted

    def test_predicate_flip(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.SETP), target=2)
        ctx.arm(plan)
        gid = ctx.global_id()
        pred = ctx.setp(gid, "lt", 100)  # all-true without the fault
        assert not bool(pred.data[2])
        assert pred.data.sum() == 63

    def test_fires_at_most_once(self):
        ctx = make_ctx()
        plan = _plan(stream=opclass_stream(OpClass.FADD), target=0)
        ctx.arm(plan)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        out1 = ctx.add(a, 1.0)
        out2 = ctx.add(a, 1.0)
        assert (out1.data != 2.0).sum() == 1
        assert (out2.data != 2.0).sum() == 0

    def test_single_plan_per_context(self):
        ctx = make_ctx()
        ctx.arm(_plan())
        with pytest.raises(Exception):
            ctx.arm(_plan())


class TestAddressInjection:
    def _run_one(self, seed):
        ctx = make_ctx()
        plan = _plan(mode=InjectionMode.ADDRESS, stream=opclass_stream(OpClass.LDG), target=10, seed=seed)
        ctx.arm(plan)
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        out = ctx.ld(buf, ctx.global_id())
        return plan, out

    def test_address_faults_mostly_due(self):
        """High bits of a 49-bit VA dominate → most corrupted addresses are
        illegal (paper §V-B)."""
        due = 0
        sdc_ish = 0
        for seed in range(60):
            try:
                plan, out = self._run_one(seed)
                if (out.data != np.arange(64, dtype=np.float32)).any():
                    sdc_ish += 1
            except IllegalAddressError:
                due += 1
        assert due > 30
        assert due + sdc_ish > 50  # nearly every address flip is visible

    def test_record_carries_detail(self):
        for seed in range(30):
            try:
                plan, _ = self._run_one(seed)
            except IllegalAddressError:
                continue
            assert plan.record.detail.startswith("address:")
            return
        pytest.fail("no surviving address injection found")


class TestControlFaults:
    def _one(self, seed):
        ctx = make_ctx()
        plan = _plan(stream=lambda op: op is OpClass.BRA, target=int(np.random.default_rng(seed).integers(0, 64)), seed=seed)
        ctx.arm(plan)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        try:
            for _ in ctx.range(4):
                a = ctx.add(a, 1.0)
        except GpuDeviceException:
            return "due"
        if plan.record.detail == "control:reconverged":
            return "masked"
        return "data" if plan.record.detail == "control:wrong_path" else "other"

    def test_mixture_matches_model(self):
        outcomes = [self._one(seed) for seed in range(120)]
        frac_due = outcomes.count("due") / len(outcomes)
        frac_masked = outcomes.count("masked") / len(outcomes)
        frac_data = outcomes.count("data") / len(outcomes)
        assert frac_due == pytest.approx(CONTROL_FAULT_DUE, abs=0.12)
        assert frac_masked == pytest.approx(CONTROL_FAULT_MASKED, abs=0.12)
        assert frac_data == pytest.approx(CONTROL_FAULT_DATA, abs=0.12)


class TestStorageStrikes:
    def test_strike_validation(self):
        with pytest.raises(ValueError):
            StorageStrike(tick=-1.0, space="rf", rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            StorageStrike(tick=0.0, space="l9", rng=np.random.default_rng(0))

    def test_rf_strike_corrupts_live_register(self):
        hits = 0
        for seed in range(40):
            ctx = make_ctx(ecc=SecdedModel(mode=EccMode.OFF))
            ctx.schedule_strike(StorageStrike(tick=50.0, space="rf", rng=np.random.default_rng(seed)))
            a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
            for _ in range(4):
                a = ctx.add(a, 1.0)
            if not np.array_equal(a.data, np.full(64, 5.0, dtype=np.float32)):
                hits += 1
        assert hits > 0

    def test_rf_strike_ecc_on_corrected_or_due(self):
        outcomes = {"clean": 0, "due": 0}
        for seed in range(200):
            ctx = make_ctx(ecc=SecdedModel(mode=EccMode.ON))
            ctx.schedule_strike(StorageStrike(tick=10.0, space="rf", rng=np.random.default_rng(seed)))
            a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
            try:
                for _ in range(4):
                    a = ctx.add(a, 1.0)
            except EccDoubleBitError:
                outcomes["due"] += 1
                continue
            assert np.array_equal(a.data, np.full(64, 5.0, dtype=np.float32))
            outcomes["clean"] += 1
        assert outcomes["due"] > 0  # ~2% MBU
        assert outcomes["clean"] > 180

    def test_strike_past_end_never_applies(self):
        ctx = make_ctx(ecc=SecdedModel(mode=EccMode.OFF))
        strike = StorageStrike(tick=1e12, space="rf", rng=np.random.default_rng(0))
        ctx.schedule_strike(strike)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        ctx.add(a, 1.0)
        assert not strike.applied

    def test_global_strike_flips_buffer_bit(self):
        ctx = make_ctx(ecc=SecdedModel(mode=EccMode.OFF))
        ctx.schedule_strike(StorageStrike(tick=1.0, space="global", rng=np.random.default_rng(1)))
        buf = ctx.alloc("a", np.zeros(64, dtype=np.int32), DType.INT32)
        ctx.ld(buf, ctx.global_id())  # advances past the tick
        assert np.count_nonzero(buf.data) == 1
