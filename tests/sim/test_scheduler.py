"""Cycle-level warp scheduler: issue limits, hazards, latency hiding."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpClass
from repro.arch.units import UnitKind
from repro.common.errors import ConfigurationError
from repro.sim.scheduler import WarpScheduler, stream_from_trace_counts


def _stream(op, n):
    return [op] * n


class TestBasics:
    def test_single_warp_serializes_on_latency(self):
        sched = WarpScheduler(KEPLER_K40C, ilp=1.0)
        result = sched.simulate(_stream(OpClass.FADD, 10), n_warps=1)
        # each FADD waits out its 4-cycle latency
        assert result.cycles >= 10 * OpClass.FADD.latency - 4
        assert result.ipc < 0.5

    def test_many_warps_hide_latency(self):
        sched = WarpScheduler(KEPLER_K40C, ilp=1.0)
        one = sched.simulate(_stream(OpClass.FADD, 32), n_warps=1)
        many = sched.simulate(_stream(OpClass.FADD, 32), n_warps=32)
        assert many.ipc > 4 * one.ipc

    def test_issue_width_caps_ipc(self):
        sched = WarpScheduler(KEPLER_K40C, ilp=4.0)
        result = sched.simulate(_stream(OpClass.IADD, 64), n_warps=64)
        assert result.ipc <= KEPLER_K40C.issue_width_per_sm + 1e-9

    def test_ilp_shortens_dependency_stalls(self):
        dep = WarpScheduler(KEPLER_K40C, ilp=1.0).simulate(_stream(OpClass.DFMA, 32), 2)
        ind = WarpScheduler(KEPLER_K40C, ilp=4.0).simulate(_stream(OpClass.DFMA, 32), 2)
        assert ind.cycles < dep.cycles

    def test_all_instructions_issue(self):
        result = WarpScheduler(VOLTA_V100).simulate(_stream(OpClass.FFMA, 20), n_warps=7)
        assert result.issued == 20 * 7

    def test_busy_fraction_bounds(self):
        result = WarpScheduler(KEPLER_K40C).simulate(_stream(OpClass.FADD, 8), 4)
        assert 0.0 < result.busy_fraction <= 1.0


class TestStructuralHazards:
    def test_scarce_unit_throttles(self):
        """Volta has 32 FP64 lanes (1 warp-instr/cycle) vs 64 FP32 lanes —
        a DP-only stream issues at most 1 warp-instruction per cycle."""
        sched = WarpScheduler(VOLTA_V100, ilp=4.0)
        dp = sched.simulate(_stream(OpClass.DFMA, 16), n_warps=32)
        sp = sched.simulate(_stream(OpClass.FFMA, 16), n_warps=32)
        assert dp.cycles > sp.cycles
        assert dp.ipc <= 1.0 + 1e-9

    def test_unit_issue_accounting(self):
        result = WarpScheduler(VOLTA_V100).simulate(
            [OpClass.FFMA, OpClass.IADD, OpClass.FFMA], n_warps=3
        )
        assert result.unit_issues[UnitKind.FP32] == 6
        assert result.unit_issues[UnitKind.INT32] == 3

    def test_mixed_stream_overlaps_units(self):
        """FP32 and INT32 issue to different Volta units: a mixed stream
        beats a same-length single-unit stream."""
        sched = WarpScheduler(VOLTA_V100, ilp=2.0)
        mixed = sched.simulate([OpClass.FFMA, OpClass.IADD] * 16, n_warps=16)
        mono = sched.simulate(_stream(OpClass.FFMA, 32), n_warps=16)
        assert mixed.cycles <= mono.cycles * 1.2


class TestValidation:
    def test_empty_stream(self):
        with pytest.raises(ConfigurationError):
            WarpScheduler(KEPLER_K40C).simulate([], 1)

    def test_zero_warps(self):
        with pytest.raises(ConfigurationError):
            WarpScheduler(KEPLER_K40C).simulate(_stream(OpClass.FADD, 4), 0)

    def test_bad_ilp(self):
        with pytest.raises(ConfigurationError):
            WarpScheduler(KEPLER_K40C, ilp=0)


class TestStreamSynthesis:
    def test_proportions_respected(self):
        stream = stream_from_trace_counts({OpClass.FFMA: 300, OpClass.LDG: 100}, length=400)
        assert len(stream) == 400
        assert stream.count(OpClass.FFMA) == pytest.approx(300, abs=4)

    def test_interleaving(self):
        stream = stream_from_trace_counts({OpClass.FFMA: 2, OpClass.LDG: 2}, length=4)
        assert stream[0] != stream[1] or stream[1] != stream[2]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            stream_from_trace_counts({}, length=4)


class TestAgreementWithRoofline:
    def test_same_order_of_magnitude(self):
        """The two timing models must broadly agree on a GEMM-like stream —
        the cross-validation bench quantifies this per workload."""
        from repro.sim.timing import TimingModel
        from repro.sim.trace import ExecutionTrace

        counts = {OpClass.FFMA: 512, OpClass.LDG: 128, OpClass.IADD: 128}
        stream = stream_from_trace_counts(counts, length=256)
        detailed = WarpScheduler(KEPLER_K40C, ilp=2.0).simulate(stream, n_warps=16)

        trace = ExecutionTrace()
        for op, n in counts.items():
            trace.record(op, n * 32 * 16 / 256, n * 16 / 256)
        roofline = TimingModel(KEPLER_K40C).estimate(trace, grid_blocks=1, active_warps_per_sm=16, ilp=2.0)
        ratio = detailed.ipc / roofline.ipc
        assert 0.2 < ratio < 8.0
