"""Roofline timing model: bounds and qualitative regimes."""

import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.isa import OpClass
from repro.common.errors import ConfigurationError
from repro.sim.timing import TimingModel
from repro.sim.trace import ExecutionTrace


def _trace(op_counts, global_bytes=0):
    t = ExecutionTrace()
    for op, n in op_counts.items():
        t.record(op, n, n / 32)
    t.global_bytes = global_bytes
    return t


class TestBounds:
    def test_compute_bound_ffma_storm(self):
        """A GEMM-like trace: massive FMA pressure, little else."""
        trace = _trace({OpClass.FFMA: 4_000_000})
        result = TimingModel(KEPLER_K40C).estimate(trace, grid_blocks=1000, active_warps_per_sm=32, ilp=4)
        assert result.bound in ("compute", "issue")
        assert result.ipc > 1.0

    def test_latency_bound_low_occupancy_chain(self):
        """A lavaMD-like trace: long dependent chains, few warps."""
        trace = _trace({OpClass.MUFU: 50_000, OpClass.DFMA: 50_000})
        result = TimingModel(VOLTA_V100).estimate(trace, grid_blocks=80, active_warps_per_sm=2, ilp=1)
        assert result.bound == "latency"
        assert result.ipc < 1.0

    def test_memory_bound_streaming(self):
        trace = _trace({OpClass.LDG: 100_000}, global_bytes=10_000_000_000)
        result = TimingModel(KEPLER_K40C).estimate(trace, grid_blocks=1000, active_warps_per_sm=48, ilp=2)
        assert result.bound == "memory"

    def test_more_warps_hide_latency(self):
        trace = _trace({OpClass.FFMA: 100_000})
        few = TimingModel(VOLTA_V100).estimate(trace, grid_blocks=80, active_warps_per_sm=2, ilp=1)
        many = TimingModel(VOLTA_V100).estimate(trace, grid_blocks=80, active_warps_per_sm=32, ilp=1)
        assert many.ipc >= few.ipc

    def test_more_ilp_raises_ipc_when_latency_bound(self):
        trace = _trace({OpClass.DFMA: 100_000})
        low = TimingModel(VOLTA_V100).estimate(trace, grid_blocks=80, active_warps_per_sm=4, ilp=1)
        high = TimingModel(VOLTA_V100).estimate(trace, grid_blocks=80, active_warps_per_sm=4, ilp=4)
        assert high.ipc >= low.ipc

    def test_bounds_reported(self):
        trace = _trace({OpClass.FADD: 1000})
        result = TimingModel(KEPLER_K40C).estimate(trace, 10, 8, 2)
        assert set(result.bounds) == {"issue", "compute", "memory", "latency"}
        assert result.cycles == max(result.bounds.values())


class TestValidation:
    def test_empty_trace(self):
        with pytest.raises(ConfigurationError):
            TimingModel(KEPLER_K40C).estimate(ExecutionTrace(), 1, 8, 2)

    def test_zero_warps(self):
        with pytest.raises(ConfigurationError):
            TimingModel(KEPLER_K40C).estimate(_trace({OpClass.FADD: 10}), 1, 0, 2)

    def test_zero_ilp(self):
        with pytest.raises(ConfigurationError):
            TimingModel(KEPLER_K40C).estimate(_trace({OpClass.FADD: 10}), 1, 8, 0)

    def test_tensor_ops_on_kepler_rejected(self):
        trace = _trace({OpClass.HMMA: 100})
        with pytest.raises(ConfigurationError):
            TimingModel(KEPLER_K40C).estimate(trace, 1, 8, 2)

    def test_ipc_bounded_by_issue_width(self):
        trace = _trace({OpClass.FADD: 10_000_000})
        result = TimingModel(KEPLER_K40C).estimate(trace, 10000, 64, 8)
        assert result.ipc <= KEPLER_K40C.issue_width_per_sm + 1e-9
