"""Fast path ≡ reference path equivalence suite.

``REPRO_FAST_PATH`` rewires the simulator's inner loops — batched trace
accounting, the pre-arm quiet mode, compiled SASS dispatch — but the
contract is that nothing observable changes.  These tests pin that
contract end to end: campaign records, beam outcomes, and memory-AVF
rates are bit-identical with the fast path on or off, serial or
parallel, ECC on or off, on both injector backends (SASSIFI drives the
``cuda7`` model, NVBitFI drives ``cuda10``).

Telemetry is held to the same bar: captured counters must match exactly
across every configuration.  Only ``span.*`` histograms are exempt —
they record wall-clock seconds, the one thing the fast path is supposed
to change.
"""

import numpy as np
import pytest

from repro.api import get_workload, run_beam, run_campaign
from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.predict.model import measure_memory_avf
from repro.sim.fastpath import fast_path
from repro.telemetry import capture

#: (fast path, workers) grid every observation is repeated over; the first
#: entry (reference path, serial) is the baseline the others must equal
MODES = [(False, 1), (True, 1), (False, 2), (True, 2)]


def _observable(snapshot):
    """Counters plus non-span histograms from a registry snapshot.

    ``span.*`` histograms observe wall-clock seconds and are legitimately
    different between the fast and reference paths.
    """
    histograms = {
        name: data
        for name, data in snapshot["histograms"].items()
        if not name.startswith("span.")
    }
    return snapshot["counters"], histograms


class TestCampaignEquivalence:
    @pytest.mark.parametrize("framework", ["sassifi", "nvbitfi"])
    @pytest.mark.parametrize("ecc", [EccMode.ON, EccMode.OFF])
    def test_records_and_telemetry_identical(self, framework, ecc):
        def observe(enabled, workers):
            workload = get_workload("kepler", "FMXM", seed=5)
            with fast_path(enabled), capture() as registry:
                result = run_campaign(
                    workload,
                    device="k40c",
                    framework=framework,
                    injections=14,
                    seed=5,
                    ecc=ecc,
                    workers=workers,
                )
            records = [
                (r.outcome, r.group, r.op, r.bit, r.detail, r.due_cause)
                for r in result.records
            ]
            return records, _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for enabled, workers in MODES[1:]:
            observed = observe(enabled, workers)
            assert observed[0] == reference[0], (enabled, workers)
            assert observed[1] == reference[1], (enabled, workers)


class TestBeamEquivalence:
    def test_outcomes_and_telemetry_identical(self):
        def observe(enabled, workers):
            workload = get_workload("kepler", "FMXM", seed=7)
            with fast_path(enabled), capture() as registry:
                result = run_beam(
                    workload,
                    device="k40c",
                    ecc=EccMode.ON,
                    max_fault_evals=24,
                    seed=7,
                    workers=workers,
                )
            tallies = {
                name: (t.faults, t.sdc, t.due) for name, t in result.tallies.items()
            }
            estimates = (result.fit_sdc, result.fit_due, result.fluence_n_cm2)
            return tallies, estimates, _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for enabled, workers in MODES[1:]:
            observed = observe(enabled, workers)
            assert observed[0] == reference[0], (enabled, workers)
            assert observed[1] == reference[1], (enabled, workers)
            assert observed[2] == reference[2], (enabled, workers)


class TestMemoryAvfEquivalence:
    @pytest.mark.parametrize("backend", ["cuda7", "cuda10"])
    def test_rates_and_telemetry_identical(self, backend):
        def observe(enabled, workers):
            workload = get_workload("kepler", "FMXM", seed=3)
            with fast_path(enabled), capture() as registry:
                rates = measure_memory_avf(
                    KEPLER_K40C,
                    workload,
                    backend=backend,
                    strikes=10,
                    seed=3,
                    workers=workers,
                )
            return rates, _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for enabled, workers in MODES[1:]:
            observed = observe(enabled, workers)
            assert observed[0] == reference[0], (enabled, workers)
            assert observed[1] == reference[1], (enabled, workers)


class TestGoldenRunEquivalence:
    def test_outputs_trace_and_ticks_identical(self):
        """The golden (fault-free) run itself: outputs, dynamic instruction
        counts, and the trace totals the batched accounting accumulates."""
        from repro.sim.launch import run_kernel

        def observe(enabled):
            workload = get_workload("kepler", "FMXM", seed=11)
            with fast_path(enabled), capture() as registry:
                run = run_kernel(KEPLER_K40C, workload.kernel, workload.sim_launch())
            trace = run.trace
            totals = (
                dict(trace.instances),
                dict(trace.issues),
                trace.global_bytes,
                trace.shared_bytes,
                trace.active_lane_sum,
                trace.launched_lane_sum,
                trace.registers_written,
                int(run.ticks),
            )
            return run.outputs, totals, _observable(registry.snapshot())

        slow = observe(False)
        fast = observe(True)
        assert sorted(slow[0]) == sorted(fast[0])
        for name in slow[0]:
            np.testing.assert_array_equal(slow[0][name], fast[0][name])
        assert slow[1] == fast[1]
        assert slow[2] == fast[2]
