"""KernelContext control: masks, loops, compiler backends, watchdog."""

import numpy as np
import pytest

from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.common.errors import SimulationError
from repro.sim.exceptions import WatchdogTimeout

from tests.sim.conftest import make_ctx


class TestMasks:
    def test_nested_masks_intersect(self, ctx):
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", 32)):
            with ctx.masked(ctx.setp(gid, "ge", 16)):
                assert ctx.mask.sum() == 16

    def test_pop_restores(self, ctx):
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", 8)):
            pass
        assert ctx.mask.all()

    def test_cannot_pop_root(self, ctx):
        with pytest.raises(SimulationError):
            ctx.pop_mask()

    def test_push_requires_predicate(self, ctx):
        with pytest.raises(SimulationError):
            ctx.push_mask(ctx.const(1, DType.INT32))

    def test_fully_masked_ops_not_counted(self, ctx):
        gid = ctx.global_id()
        nobody = ctx.setp(gid, "lt", 0)
        before = ctx.trace.total_instances
        with ctx.masked(nobody):  # nobody active
            ctx.add(gid, 1)
        assert ctx.trace.total_instances == before

    def test_partial_mask_counts_active_only(self, ctx):
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", 10)):
            ctx.add(gid, 1)
        assert ctx.trace.instances[OpClass.IADD] == 10

    def test_any_and_count(self, ctx):
        gid = ctx.global_id()
        pred = ctx.setp(gid, "lt", 3)
        assert ctx.any(pred)
        assert ctx.count(pred) == 3
        assert not ctx.any(ctx.setp(gid, "lt", 0))


class TestRangeLoop:
    def test_emits_loop_overhead(self):
        ctx = make_ctx()
        for _ in ctx.range(4):
            pass
        assert ctx.trace.instances[OpClass.BRA] == 4 * ctx.num_lanes
        assert ctx.trace.instances[OpClass.IADD] == 4 * ctx.num_lanes

    def test_unroll_reduces_overhead_on_cuda10(self):
        ctx = make_ctx(backend="cuda10")
        for _ in ctx.range(8, unroll=4):
            pass
        assert ctx.trace.instances[OpClass.BRA] == 2 * ctx.num_lanes

    def test_cuda7_ignores_unroll(self):
        """The older toolchain does not unroll — more overhead instructions
        (§VI: compiler version changes the generated SASS)."""
        ctx = make_ctx(backend="cuda7")
        for _ in ctx.range(8, unroll=4):
            pass
        assert ctx.trace.instances[OpClass.BRA] == 8 * ctx.num_lanes

    def test_negative_count_rejected(self):
        ctx = make_ctx()
        with pytest.raises(SimulationError):
            list(ctx.range(-1))

    def test_yields_indices(self):
        ctx = make_ctx()
        assert list(ctx.range(5)) == [0, 1, 2, 3, 4]


class TestCompilerBackends:
    def test_cuda7_emits_dead_load_copies(self):
        """Each load gains an un-eliminated MOV copy — a real injectable
        site whose corruption is masked (the AVF-dilution mechanism)."""
        c7 = make_ctx(backend="cuda7")
        c10 = make_ctx(backend="cuda10")
        for c in (c7, c10):
            buf = c.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
            c.ld(buf, c.global_id())
        assert c7.trace.instances.get(OpClass.MOV, 0) > c10.trace.instances.get(OpClass.MOV, 0)

    def test_cuda7_emits_dead_address_arith(self):
        c7 = make_ctx(backend="cuda7")
        a = c7.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        for _ in range(12):
            a = c7.add(a, 1.0)
        # 12 FADDs → 2 dead IADDs (every 6th arithmetic op)
        assert c7.trace.instances.get(OpClass.IADD, 0) == 2 * c7.num_lanes

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            make_ctx(backend="cuda99")


class TestWatchdogAndMisc:
    def test_watchdog_fires(self):
        ctx = make_ctx(watchdog_limit=100.0)
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        with pytest.raises(WatchdogTimeout):
            for _ in range(100):
                a = ctx.add(a, 1.0)

    def test_no_watchdog_by_default(self):
        ctx = make_ctx()
        a = ctx.from_array(np.ones(64, dtype=np.float32), DType.FP32)
        for _ in range(50):
            a = ctx.add(a, 1.0)

    def test_bar_counts(self, ctx):
        ctx.bar()
        ctx.bar()
        assert ctx.trace.barriers == 2
        assert ctx.trace.instances[OpClass.BAR] == 2 * ctx.num_lanes

    def test_nop_advances_tick(self, ctx):
        before = ctx.tick
        ctx.nop()
        assert ctx.tick > before

    def test_host_reads_counted_as_syncs(self, ctx):
        buf = ctx.alloc("a", np.arange(8, dtype=np.float32), DType.FP32)
        ctx.read_buffer(buf)
        val = ctx.from_array(np.zeros(64, dtype=np.float32), DType.FP32)
        ctx.read(val)
        assert ctx.trace.host_syncs == 2

    def test_warp_occupancy_counts_warps_not_lanes(self):
        """A warp with one active lane still occupies its slot."""
        ctx = make_ctx()
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "eq", 0)):  # one lane, warp 0
            ctx.add(gid, 1)
        # 1 of 2 warps occupied for that op
        assert ctx.trace.active_lane_sum / ctx.trace.launched_lane_sum < 1.0
