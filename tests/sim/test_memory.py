"""Device memory: buffers, pool, strikes, the mapped-span model."""

import numpy as np
import pytest

from repro.arch.dtypes import DType
from repro.arch.ecc import EccMode, EccOutcome, SecdedModel
from repro.common.errors import ConfigurationError
from repro.sim.exceptions import EccDoubleBitError
from repro.sim.memory import DeviceBuffer, MemoryPool, SharedBuffer


def _pool(ecc=EccMode.OFF):
    return MemoryPool(SecdedModel(mode=ecc))


def _buf(name="b", n=16, dtype=DType.FP32):
    return DeviceBuffer(name, np.zeros(n, dtype=dtype.np_dtype), dtype)


class TestDeviceBuffer:
    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceBuffer("x", np.zeros(4, dtype=np.float64), DType.FP32)

    def test_sizes(self):
        buf = _buf(n=10)
        assert buf.elements == 10
        assert buf.nbytes == 40

    def test_flip_bit(self):
        buf = _buf()
        buf.flip_bit(3, 31)  # sign bit of 0.0 -> -0.0, bit pattern differs
        assert buf.flat().view(np.uint32)[3] == 1 << 31

    def test_flip_bit_bounds(self):
        with pytest.raises(ConfigurationError):
            _buf().flip_bit(99, 0)
        with pytest.raises(ConfigurationError):
            _buf().flip_bit(0, 32)

    def test_shared_needs_block_axis(self):
        with pytest.raises(ConfigurationError):
            SharedBuffer("s", np.zeros(8, dtype=np.float32), DType.FP32)

    def test_shared_per_block_accounting(self):
        buf = SharedBuffer("s", np.zeros((4, 32), dtype=np.int32), DType.INT32)
        assert buf.blocks == 4
        assert buf.elements_per_block == 32
        assert buf.bytes_per_block == 128


class TestPool:
    def test_duplicate_names_rejected(self):
        pool = _pool()
        pool.register(_buf("a"))
        with pytest.raises(ConfigurationError):
            pool.register(_buf("a"))

    def test_get(self):
        pool = _pool()
        buf = pool.register(_buf("a"))
        assert pool.get("a") is buf
        with pytest.raises(ConfigurationError):
            pool.get("missing")

    def test_footprint_by_space(self):
        pool = _pool()
        pool.register(_buf("g", n=8))
        pool.register(SharedBuffer("s", np.zeros((2, 4), dtype=np.float32), DType.FP32))
        assert pool.footprint_bits("global") == 8 * 32
        assert pool.footprint_bits("shared") == 8 * 32
        assert pool.footprint_bits() == 16 * 32

    def test_choose_target_weighted_by_bytes(self):
        pool = _pool()
        pool.register(_buf("small", n=2))
        pool.register(_buf("large", n=2000))
        rng = np.random.default_rng(0)
        hits = sum(1 for _ in range(300) if pool.choose_target(rng)[0].name == "large")
        assert hits > 270

    def test_choose_target_empty_space(self):
        with pytest.raises(ConfigurationError):
            _pool().choose_target(np.random.default_rng(0), "shared")


class TestStrikes:
    def test_ecc_off_mutates(self):
        pool = _pool(EccMode.OFF)
        buf = pool.register(_buf("a", n=4))
        rng = np.random.default_rng(3)
        outcome = pool.strike(rng)
        assert outcome is EccOutcome.DELIVERED
        assert np.count_nonzero(buf.flat().view(np.uint32)) == 1

    def test_ecc_on_corrects_or_raises(self):
        rng = np.random.default_rng(5)
        corrected = 0
        due = 0
        for _ in range(400):
            pool = _pool(EccMode.ON)
            buf = pool.register(_buf("a", n=4))
            try:
                outcome = pool.strike(rng)
            except EccDoubleBitError:
                due += 1
                continue
            assert outcome is EccOutcome.CORRECTED
            assert not buf.flat().any()  # corrected: data untouched
            corrected += 1
        assert corrected > 350
        assert 0 < due < 30  # ~2% MBU


class TestMappedSpan:
    def test_span_is_page_rounded(self):
        pool = _pool()
        pool.register(_buf("a", n=4))
        assert pool.mapped_span_bytes == MemoryPool.PAGE_BYTES

    def test_span_counts_only_global(self):
        pool = _pool()
        pool.register(SharedBuffer("s", np.zeros((2, 4), dtype=np.float32), DType.FP32))
        assert pool.mapped_span_bytes == MemoryPool.PAGE_BYTES  # floor of 1 page

    def test_wild_read_deterministic(self):
        pool = _pool()
        a = pool.wild_read_bits(np.array([1000], dtype=np.int64))
        b = pool.wild_read_bits(np.array([1000], dtype=np.int64))
        assert a[0] == b[0]
        assert a[0] >= 0

    def test_wild_store_corrupts_some_buffer(self):
        pool = _pool()
        buf = pool.register(_buf("a", n=64))
        pool.wild_store(12345, 7)
        assert np.count_nonzero(buf.flat().view(np.uint32)) == 1

    def test_wild_store_no_global_buffers_is_noop(self):
        pool = _pool()
        pool.wild_store(12345, 7)  # must not raise
