"""Property-based tests of the simulator's core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.sim.injection import FaultModel, InjectionMode, InjectionPlan, opclass_stream

from tests.sim.conftest import make_ctx

_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32)


class TestExecutionInvariants:
    @given(values=st.lists(_floats, min_size=1, max_size=8), reps=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_trace_counts_scale_linearly_with_work(self, values, reps):
        """N repetitions of the same op sequence emit exactly N× the
        instances — the accounting the injectors' sampling space rests on."""
        def run(n):
            ctx = make_ctx()
            a = ctx.from_array(np.resize(np.array(values, dtype=np.float32), 64), DType.FP32)
            for _ in range(n):
                a = ctx.add(a, 1.0)
            return ctx.trace.instances[OpClass.FADD]

        assert run(reps) == reps * run(1) / 1

    @given(data=st.lists(_floats, min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_mask_scope_restores_exactly(self, data):
        ctx = make_ctx()
        a = ctx.from_array(np.resize(np.array(data, dtype=np.float32), 64), DType.FP32)
        before = ctx.mask.copy()
        with ctx.masked(ctx.setp(a, "gt", 0.0)):
            with ctx.masked(ctx.setp(a, "lt", 100.0)):
                pass
        np.testing.assert_array_equal(ctx.mask, before)

    @given(threshold=st.integers(0, 64))
    @settings(max_examples=25, deadline=None)
    def test_masked_store_touches_exactly_active_lanes(self, threshold):
        ctx = make_ctx()
        buf = ctx.alloc_zeros("c", 64, DType.INT32)
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", threshold)):
            ctx.st(buf, gid, ctx.const(1, DType.INT32))
        assert int(buf.data.sum()) == min(threshold, 64)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_runs_identical_without_faults(self, seed):
        """The context RNG must not leak into fault-free execution."""
        def run(rng_seed):
            ctx = make_ctx(rng=np.random.default_rng(rng_seed))
            a = ctx.from_array(np.arange(64, dtype=np.float32), DType.FP32)
            for _ in ctx.range(4):
                a = ctx.fma(a, 1.5, 2.0)
            return a.data.copy()

        np.testing.assert_array_equal(run(seed), run(seed + 1))


class TestInjectionInvariants:
    @given(target=st.integers(0, 255), bit_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_bit_injection_touches_one_lane_one_bit(self, target, bit_seed):
        ctx = make_ctx()
        plan = InjectionPlan(
            mode=InjectionMode.OUTPUT_VALUE,
            stream=opclass_stream(OpClass.IADD),
            target_index=target,
            fault_model=FaultModel.SINGLE_BIT,
            rng=np.random.default_rng(bit_seed),
        )
        ctx.arm(plan)
        a = ctx.from_array(np.zeros(64, dtype=np.int32), DType.INT32)
        results = []
        for _ in range(4):  # 4 × 64 = 256 instances ≥ any target
            results.append(ctx.add(a, 0))
        assert plan.fired
        diffs = [int(np.count_nonzero(r.data)) for r in results]
        assert sum(diffs) == 1
        corrupted = results[target // 64].data[target % 64]
        assert bin(int(corrupted) & 0xFFFFFFFF).count("1") == 1

    @given(target=st.integers(0, 63))
    @settings(max_examples=20, deadline=None)
    def test_injection_lane_matches_target(self, target):
        ctx = make_ctx()
        plan = InjectionPlan(
            mode=InjectionMode.OUTPUT_VALUE,
            stream=opclass_stream(OpClass.FADD),
            target_index=target,
            fault_model=FaultModel.SINGLE_BIT,
            rng=np.random.default_rng(0),
        )
        ctx.arm(plan)
        a = ctx.from_array(np.zeros(64, dtype=np.float32), DType.FP32)
        out = ctx.add(a, 0.0)
        assert plan.record.lane == target
        assert np.flatnonzero(out.data != 0.0).tolist() in ([target], [])
        # ([]: the flip may hit the sign bit of 0.0 -> -0.0, value-equal)
        view = out.data.view(np.uint32)
        assert np.flatnonzero(view != 0).tolist() == [target]


class TestDeterminismAcrossBackends:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_cuda7_and_cuda10_compute_same_values(self, seed):
        """Dead code and unrolling change the *instruction stream*, never
        the semantics — both backends must produce identical outputs."""
        rng = np.random.default_rng(seed)
        data = rng.uniform(-4, 4, 64).astype(np.float32)

        def run(backend):
            ctx = make_ctx(backend=backend)
            buf = ctx.alloc("a", data, DType.FP32)
            x = ctx.ld(buf, ctx.global_id())
            acc = ctx.const(0.0, DType.FP32)
            for _ in ctx.range(6, unroll=3):
                acc = ctx.fma(x, 0.25, acc)
            return ctx.read(acc), ctx.trace.total_instances

        out7, n7 = run("cuda7")
        out10, n10 = run("cuda10")
        np.testing.assert_array_equal(out7, out10)
        assert n7 > n10  # but the old toolchain emits more instructions
