"""Register values: bit flips, tiles, predicates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.dtypes import DType
from repro.sim.values import Val, bitcast_random_value


def _val(dtype, lanes=4, tile=()):
    data = np.zeros((lanes, *tile), dtype=dtype.np_dtype)
    return Val(data, dtype, vreg=1)


class TestFlipBit:
    @pytest.mark.parametrize("dtype", list(DType))
    def test_double_flip_is_identity(self, dtype):
        val = _val(dtype)
        val.data[...] = 3
        before = val.data.copy()
        val.flip_bit(2, 5)
        assert not np.array_equal(val.data, before)
        val.flip_bit(2, 5)
        np.testing.assert_array_equal(val.data, before)

    def test_flip_changes_only_target_lane(self):
        val = _val(DType.FP32)
        val.flip_bit(1, 10)
        assert val.data[1] != 0.0
        assert val.data[0] == 0.0 and val.data[2] == 0.0

    def test_flip_sign_bit_fp32(self):
        val = _val(DType.FP32)
        val.data[...] = 1.0
        val.flip_bit(0, 31)
        assert val.data[0] == -1.0

    def test_flip_low_mantissa_small_change(self):
        val = _val(DType.FP64)
        val.data[...] = 1.0
        val.flip_bit(0, 0)
        assert val.data[0] != 1.0
        assert abs(val.data[0] - 1.0) < 1e-10

    def test_flip_int_bit_value(self):
        val = _val(DType.INT32)
        val.flip_bit(0, 4)
        assert val.data[0] == 16

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            _val(DType.FP16).flip_bit(0, 16)

    def test_tile_element_addressing(self):
        val = _val(DType.FP16, lanes=2, tile=(16, 16))
        val.flip_bit(1, 0, element=17)  # row 1, col 1 of lane 1
        assert val.data[1, 1, 1] != 0.0
        assert val.data[0].sum() == 0.0
        assert np.count_nonzero(val.data[1]) == 1

    @given(
        lane=st.integers(0, 3),
        bit=st.integers(0, 31),
        value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    )
    @settings(max_examples=50)
    def test_flip_roundtrip_fp32(self, lane, bit, value):
        val = _val(DType.FP32)
        val.data[...] = value
        val.flip_bit(lane, bit)
        val.flip_bit(lane, bit)
        assert val.data[lane] == np.float32(value)


class TestPredicates:
    def test_predicate_flip_inverts(self):
        val = Val(np.array([True, False, True]), None, vreg=2)
        val.flip_bit(1, 0)
        assert bool(val.data[1]) is True
        val.flip_bit(0, 0)
        assert bool(val.data[0]) is False

    def test_is_predicate(self):
        assert Val(np.zeros(2, dtype=bool), None, 0).is_predicate
        assert not _val(DType.FP32).is_predicate


class TestSetValue:
    def test_set_value(self):
        val = _val(DType.INT32)
        val.set_value(2, np.int32(99))
        assert val.data[2] == 99

    def test_tile_shape(self):
        val = _val(DType.FP16, tile=(16, 16))
        assert val.tile_shape == (16, 16)
        assert val.lanes == 4


class TestBitcastRandom:
    @pytest.mark.parametrize("dtype", list(DType))
    def test_type_matches(self, dtype):
        rng = np.random.default_rng(0)
        value = bitcast_random_value(dtype, rng)
        assert value.dtype == dtype.np_dtype

    def test_varies(self):
        rng = np.random.default_rng(1)
        values = {float(bitcast_random_value(DType.FP32, rng)) for _ in range(20) if np.isfinite(bitcast_random_value(DType.FP32, rng))}
        assert len(values) > 5
