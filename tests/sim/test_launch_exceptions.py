"""Launch driver and the simulated device-exception taxonomy."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C
from repro.arch.dtypes import DType
from repro.common.errors import ConfigurationError, ReproError
from repro.sim.exceptions import (
    DeviceHangError,
    EccDoubleBitError,
    GpuDeviceException,
    IllegalAddressError,
    WatchdogTimeout,
)
from repro.sim.launch import KernelRun, LaunchConfig, run_kernel


def _kernel(ctx):
    buf = ctx.alloc("x", np.arange(32, dtype=np.float32), DType.FP32)
    val = ctx.ld(buf, ctx.thread_idx())
    ctx.st(buf, ctx.thread_idx(), ctx.add(val, 1.0))
    return {"x": ctx.read_buffer(buf)}


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(4, 128).total_threads == 512

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(0, 32)
        with pytest.raises(ConfigurationError):
            LaunchConfig(1, 0)


class TestRunKernel:
    def test_returns_outputs_and_trace(self):
        run = run_kernel(KEPLER_K40C, _kernel, LaunchConfig(1, 32))
        assert isinstance(run, KernelRun)
        np.testing.assert_array_equal(run.outputs["x"], np.arange(1, 33, dtype=np.float32))
        assert run.ticks > 0

    def test_non_dict_output_rejected(self):
        def bad(ctx):
            return [1, 2, 3]

        with pytest.raises(ConfigurationError):
            run_kernel(KEPLER_K40C, bad, LaunchConfig(1, 32))

    def test_numpy_warnings_suppressed(self):
        """Predicated-off lanes may divide by zero; that must stay silent."""

        def divides(ctx):
            a = ctx.alloc("a", np.zeros(32, dtype=np.float32), DType.FP32)
            x = ctx.ld(a, ctx.thread_idx())
            ctx.div(ctx.const(1.0, DType.FP32), x)  # 1/0 everywhere
            return {"a": ctx.read_buffer(a)}

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_kernel(KEPLER_K40C, divides, LaunchConfig(1, 32))


class TestExceptionTaxonomy:
    def test_hierarchy(self):
        for exc_type in (IllegalAddressError, EccDoubleBitError, WatchdogTimeout, DeviceHangError):
            assert issubclass(exc_type, GpuDeviceException)
            # simulated hardware events are NOT library errors
            assert not issubclass(exc_type, ReproError)

    def test_causes_distinct(self):
        causes = {
            IllegalAddressError("global", 0, 0).cause,
            EccDoubleBitError("rf").cause,
            WatchdogTimeout(10, 5).cause,
            DeviceHangError("scheduler").cause,
        }
        assert len(causes) == 4

    def test_messages_carry_context(self):
        exc = IllegalAddressError("global", address=4096, limit=256)
        assert "4096" in str(exc) and "global" in str(exc)
        exc = WatchdogTimeout(executed=100, limit=50)
        assert "100" in str(exc)
        exc = DeviceHangError("scheduler")
        assert "scheduler" in str(exc)
