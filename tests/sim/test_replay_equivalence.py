"""Checkpoint/replay ≡ vanilla-execution equivalence suite.

Replay forks every injected run from the nearest golden snapshot and
executes only the post-fault suffix; the contract (like the fast path's)
is that nothing observable changes.  These tests pin it end to end:
campaign records, DUE breakdowns, beam tallies/FITs, uncore records and
captured telemetry are bit-identical with replay on or off, fast path on
or off, serial or parallel, ECC on or off, on more than one workload.

The same ``span.*`` histogram exemption as the fast-path suite applies —
they record wall-clock seconds, the one thing replay is supposed to
change.  ``store.*`` / ``exec.*`` bookkeeping is absent here because no
test in this module uses a store.
"""

import numpy as np
import pytest

from repro.api import ExecutionPolicy, get_workload, run_beam, run_campaign
from repro.arch.devices import KEPLER_K40C
from repro.arch.ecc import EccMode
from repro.faultsim.uncore import UncoreInjector
from repro.sim.fastpath import fast_path
from repro.sim.injection import StorageStrike
from repro.sim.launch import run_kernel
from repro.sim.replay import ReplaySession
from repro.store.codec import decode_results, encode_results
from repro.telemetry import capture

#: (replay, fast path, workers) grid; the first entry — vanilla execution,
#: reference path, serial — is the baseline every other mode must equal
MODES = [
    (False, False, 1),
    (True, False, 1),
    (False, True, 1),
    (True, True, 1),
    (True, False, 2),
    (True, True, 2),
    (False, True, 2),
]


def _observable(snapshot):
    """Counters plus non-span histograms (span.* observes wall-clock)."""
    histograms = {
        name: data
        for name, data in snapshot["histograms"].items()
        if not name.startswith("span.")
    }
    return snapshot["counters"], histograms


def _policy(replay):
    return ExecutionPolicy(replay=replay)


class TestCampaignEquivalence:
    @pytest.mark.parametrize("code", ["FMXM", "FGAUSSIAN"])
    @pytest.mark.parametrize("ecc", [EccMode.ON, EccMode.OFF])
    def test_records_due_breakdown_and_telemetry_identical(self, code, ecc):
        def observe(replay, enabled, workers):
            workload = get_workload("kepler", code, seed=5)
            with fast_path(enabled), capture() as registry:
                result = run_campaign(
                    workload,
                    device="k40c",
                    framework="nvbitfi",
                    injections=12,
                    seed=5,
                    ecc=ecc,
                    workers=workers,
                    policy=_policy(replay),
                )
            records = [
                (r.outcome, r.group, r.op, r.bit, r.detail, r.due_cause, r.contained)
                for r in result.records
            ]
            return records, result.due_breakdown(), _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for mode in MODES[1:]:
            observed = observe(*mode)
            assert observed[0] == reference[0], mode
            assert observed[1] == reference[1], mode
            assert observed[2] == reference[2], mode

    def test_sassifi_backend_identical(self):
        """The cuda7 model replays bit-identically too (SASSIFI driver)."""

        def observe(replay):
            workload = get_workload("kepler", "FMXM", seed=9)
            with capture() as registry:
                result = run_campaign(
                    workload,
                    device="k40c",
                    framework="sassifi",
                    injections=12,
                    seed=9,
                    policy=_policy(replay),
                )
            records = [
                (r.outcome, r.group, r.op, r.bit, r.detail, r.due_cause)
                for r in result.records
            ]
            return records, _observable(registry.snapshot())

        assert observe(True) == observe(False)


class TestBeamEquivalence:
    @pytest.mark.parametrize("ecc", [EccMode.ON, EccMode.OFF])
    def test_tallies_fits_and_telemetry_identical(self, ecc):
        def observe(replay, enabled, workers):
            workload = get_workload("kepler", "FMXM", seed=7)
            with fast_path(enabled), capture() as registry:
                result = run_beam(
                    workload,
                    device="k40c",
                    ecc=ecc,
                    max_fault_evals=18,
                    seed=7,
                    workers=workers,
                    policy=_policy(replay),
                )
            tallies = {
                name: (t.faults, t.sdc, t.due) for name, t in result.tallies.items()
            }
            estimates = (result.fit_sdc, result.fit_due, result.fluence_n_cm2)
            return tallies, estimates, _observable(registry.snapshot())

        reference = observe(*MODES[0])
        for mode in MODES[1:]:
            observed = observe(*mode)
            assert observed[0] == reference[0], mode
            assert observed[1] == reference[1], mode
            assert observed[2] == reference[2], mode


class TestUncoreEquivalence:
    @pytest.mark.parametrize("code", ["FMXM", "FGAUSSIAN"])
    def test_records_identical(self, code):
        def observe(replay, enabled):
            workload = get_workload("kepler", code, seed=3)
            with fast_path(enabled), capture() as registry:
                injector = UncoreInjector(KEPLER_K40C, seed=3, replay=replay)
                result = injector.run(workload, 12)
            records = [
                (r.outcome, r.group, r.detail, r.due_cause) for r in result.records
            ]
            return records, _observable(registry.snapshot())

        reference = observe(False, False)
        for replay in (False, True):
            for enabled in (False, True):
                assert observe(replay, enabled) == reference, (replay, enabled)


class TestSessionCodecRoundTrip:
    def test_export_import_state_preserves_replay(self):
        """A session's tape + snapshots survive the store codec: a fresh
        session importing the encoded state replays the same strike
        bit-identically without re-capturing the golden run."""
        workload = get_workload("kepler", "FMXM", seed=13)
        golden = run_kernel(KEPLER_K40C, workload.kernel, workload.sim_launch())

        def build():
            return ReplaySession(
                KEPLER_K40C,
                workload.kernel,
                workload.sim_launch(),
                ecc=EccMode.ON,
                backend="cuda10",
                snapshots_per_run=8,
                expected_ticks=golden.ticks,
            )

        def strike():
            rng = np.random.default_rng(42)
            return StorageStrike(
                tick=float(int(golden.ticks) // 2), space="global", rng=rng
            )

        first = build()
        run_a = first.run(strikes=(strike(),), watchdog_limit=10 * golden.ticks)
        payload = first.export_state()
        assert payload is not None

        decoded = decode_results(encode_results([payload]))[0]
        second = build()
        assert second.import_state(decoded)
        run_b = second.run(strikes=(strike(),), watchdog_limit=10 * golden.ticks)

        assert second.stats["captures"] == 0  # golden came from the import
        assert sorted(run_a.outputs) == sorted(run_b.outputs)
        for name in run_a.outputs:
            np.testing.assert_array_equal(run_a.outputs[name], run_b.outputs[name])

    def test_import_rejects_garbage(self):
        workload = get_workload("kepler", "FMXM", seed=13)
        session = ReplaySession(
            KEPLER_K40C,
            workload.kernel,
            workload.sim_launch(),
            ecc=EccMode.ON,
            backend="cuda10",
            snapshots_per_run=8,
        )
        assert not session.import_state({"bogus": True})
        assert session.export_state() is None  # nothing captured yet
