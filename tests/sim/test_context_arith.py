"""KernelContext arithmetic: semantics vs NumPy, instruction accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.common.errors import SimulationError

from tests.sim.conftest import make_ctx


def _lane_array(ctx, values, dtype=DType.FP32):
    data = np.resize(np.asarray(values, dtype=dtype.np_dtype), ctx.num_lanes)
    return ctx.from_array(data, dtype)


class TestBinaryOps:
    def test_add_matches_numpy(self, ctx):
        a = _lane_array(ctx, [1.5, -2.0])
        b = _lane_array(ctx, [0.25, 4.0])
        out = ctx.add(a, b)
        np.testing.assert_array_equal(out.data, a.data + b.data)
        assert ctx.trace.instances[OpClass.FADD] == ctx.num_lanes

    def test_add_int_emits_iadd(self, ctx):
        a = _lane_array(ctx, [3], DType.INT32)
        out = ctx.add(a, 4)
        assert out.data[0] == 7
        assert ctx.trace.instances[OpClass.IADD] == ctx.num_lanes

    def test_sub(self, ctx):
        a = _lane_array(ctx, [5.0])
        out = ctx.sub(a, 2.0)
        assert out.data[0] == 3.0

    def test_mul_fp64(self, ctx):
        a = _lane_array(ctx, [1.5], DType.FP64)
        out = ctx.mul(a, a)
        assert out.dtype is DType.FP64
        assert out.data[0] == 2.25
        assert ctx.trace.instances[OpClass.DMUL] == ctx.num_lanes

    def test_fma_fp32(self, ctx):
        a = _lane_array(ctx, [2.0])
        out = ctx.fma(a, 3.0, 1.0)
        assert out.data[0] == 7.0
        assert ctx.trace.instances[OpClass.FFMA] == ctx.num_lanes

    def test_mad_int(self, ctx):
        a = _lane_array(ctx, [2], DType.INT32)
        out = ctx.mad(a, 3, 4)
        assert out.data[0] == 10
        assert ctx.trace.instances[OpClass.IMAD] == ctx.num_lanes

    def test_fp16_arithmetic_rounds(self, ctx):
        a = _lane_array(ctx, [1.0], DType.FP16)
        tiny = _lane_array(ctx, [1e-5], DType.FP16)
        out = ctx.add(a, tiny)
        assert out.data[0] == np.float16(1.0)  # absorbed by fp16 rounding

    def test_mixed_dtypes_rejected(self, ctx):
        a = _lane_array(ctx, [1.0], DType.FP32)
        b = _lane_array(ctx, [1.0], DType.FP64)
        with pytest.raises(SimulationError):
            ctx.add(a, b)

    def test_int_overflow_wraps(self, ctx):
        a = _lane_array(ctx, [2**30], DType.INT32)
        out = ctx.add(a, a)
        assert out.data[0] == -(2**31)

    @given(
        x=st.floats(min_value=-1e3, max_value=1e3, width=32),
        y=st.floats(min_value=-1e3, max_value=1e3, width=32),
        z=st.floats(min_value=-1e3, max_value=1e3, width=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_fma_matches_numpy_float32(self, x, y, z):
        ctx = make_ctx()
        a = _lane_array(ctx, [x])
        out = ctx.fma(a, y, z)
        expected = np.float32(np.float32(x) * np.float32(y) + np.float32(z))
        assert out.data[0] == expected


class TestDivSqrtExp:
    def test_div(self, ctx):
        a = _lane_array(ctx, [6.0])
        out = ctx.div(a, 2.0)
        assert out.data[0] == pytest.approx(3.0, rel=1e-6)
        assert ctx.trace.instances[OpClass.MUFU] == ctx.num_lanes

    def test_div_integer_rejected(self, ctx):
        a = _lane_array(ctx, [6], DType.INT32)
        with pytest.raises(SimulationError):
            ctx.div(a, 2)

    def test_idiv_imod(self, ctx):
        a = _lane_array(ctx, [17], DType.INT32)
        assert ctx.idiv(a, 5).data[0] == 3
        assert ctx.imod(a, 5).data[0] == 2

    def test_idiv_by_zero_lane_safe(self, ctx):
        a = _lane_array(ctx, [17], DType.INT32)
        out = ctx.idiv(a, 0)  # guarded; hardware-defined garbage, no crash
        assert out.data.shape[0] == ctx.num_lanes

    def test_sqrt(self, ctx):
        a = _lane_array(ctx, [9.0])
        assert ctx.sqrt(a).data[0] == 3.0

    def test_exp(self, ctx):
        a = _lane_array(ctx, [0.0])
        assert ctx.exp(a).data[0] == 1.0


class TestBitwiseSelect:
    def test_bit_ops(self, ctx):
        a = _lane_array(ctx, [0b1100], DType.INT32)
        b = _lane_array(ctx, [0b1010], DType.INT32)
        assert ctx.bit_and(a, b).data[0] == 0b1000
        assert ctx.bit_or(a, b).data[0] == 0b1110
        assert ctx.bit_xor(a, b).data[0] == 0b0110
        assert ctx.trace.instances[OpClass.LOP] == 3 * ctx.num_lanes

    def test_shifts(self, ctx):
        a = _lane_array(ctx, [4], DType.INT32)
        assert ctx.shl(a, 2).data[0] == 16
        assert ctx.shr(a, 1).data[0] == 2
        assert ctx.trace.instances[OpClass.SHF] == 2 * ctx.num_lanes

    def test_minmax_int_uses_imnmx(self, ctx):
        a = _lane_array(ctx, [3], DType.INT32)
        assert ctx.minimum(a, 1).data[0] == 1
        assert ctx.maximum(a, 7).data[0] == 7
        assert ctx.trace.instances[OpClass.IMNMX] == 2 * ctx.num_lanes

    def test_minmax_float_uses_sel(self, ctx):
        a = _lane_array(ctx, [3.0])
        ctx.minimum(a, 1.0)
        assert ctx.trace.instances[OpClass.SEL] == ctx.num_lanes

    def test_where(self, ctx):
        a = _lane_array(ctx, [1.0, 2.0])
        pred = ctx.setp(a, "gt", 1.5)
        out = ctx.where(pred, a, 0.0)
        assert out.data[0] == 0.0
        assert out.data[1] == 2.0

    def test_where_requires_predicate(self, ctx):
        a = _lane_array(ctx, [1.0])
        with pytest.raises(SimulationError):
            ctx.where(a, a, a)

    def test_cvt(self, ctx):
        a = _lane_array(ctx, [2.75])
        out = ctx.cvt(a, DType.INT32)
        assert out.dtype is DType.INT32
        assert out.data[0] == 2
        assert ctx.trace.instances[OpClass.CVT] == ctx.num_lanes

    def test_mov_copies(self, ctx):
        a = _lane_array(ctx, [5.0])
        out = ctx.mov(a)
        out.data[0] = 99.0
        assert a.data[0] == 5.0  # deep copy

    def test_neg_abs(self, ctx):
        a = _lane_array(ctx, [-3.0])
        assert ctx.neg(a).data[0] == 3.0
        assert ctx.abs(a).data[0] == 3.0


class TestPredicateOps:
    @pytest.mark.parametrize("cmp,expect", [("lt", True), ("le", True), ("gt", False), ("ge", False), ("eq", False), ("ne", True)])
    def test_setp_comparisons(self, ctx, cmp, expect):
        a = _lane_array(ctx, [1.0])
        pred = ctx.setp(a, cmp, 2.0)
        assert bool(pred.data[0]) is expect

    def test_setp_unknown_cmp(self, ctx):
        a = _lane_array(ctx, [1.0])
        with pytest.raises(SimulationError):
            ctx.setp(a, "approx", 2.0)

    def test_pred_logic(self, ctx):
        a = _lane_array(ctx, [1.0, 3.0])
        p = ctx.setp(a, "gt", 2.0)
        q = ctx.setp(a, "lt", 2.0)
        assert not ctx.pred_and(p, q).data.any()
        assert ctx.pred_or(p, q).data.all()
        np.testing.assert_array_equal(ctx.pred_not(p).data, ~p.data)

    def test_pred_ops_reject_values(self, ctx):
        a = _lane_array(ctx, [1.0])
        with pytest.raises(SimulationError):
            ctx.pred_and(a, a)


class TestConstants:
    def test_const_is_free(self, ctx):
        before = ctx.trace.total_instances
        ctx.const(5.0, DType.FP32)
        assert ctx.trace.total_instances == before

    def test_thread_geometry(self, ctx):
        tid = ctx.thread_idx()
        bid = ctx.block_idx()
        gid = ctx.global_id()
        np.testing.assert_array_equal(gid.data, np.arange(64))
        np.testing.assert_array_equal(tid.data, np.arange(64) % 32)
        np.testing.assert_array_equal(bid.data, np.arange(64) // 32)

    def test_from_array_shape_checked(self, ctx):
        with pytest.raises(Exception):
            ctx.from_array(np.zeros(3, dtype=np.float32), DType.FP32)
