"""Shared fixtures for simulator tests."""

import numpy as np
import pytest

from repro.arch.devices import KEPLER_K40C, VOLTA_V100
from repro.arch.ecc import EccMode, SecdedModel
from repro.sim.context import KernelContext


@pytest.fixture
def ctx():
    """A small 2-block × 32-thread Kepler context, ECC ON."""
    return KernelContext(
        device=KEPLER_K40C,
        grid_blocks=2,
        threads_per_block=32,
        ecc=SecdedModel(mode=EccMode.ON),
        rng=np.random.default_rng(0),
    )


@pytest.fixture
def volta_warp_ctx():
    """A warp-lane Volta context (4 warps) for tensor-core tests."""
    return KernelContext(
        device=VOLTA_V100,
        grid_blocks=1,
        threads_per_block=128,
        ecc=SecdedModel(mode=EccMode.ON),
        rng=np.random.default_rng(0),
        warp_lanes=True,
    )


def make_ctx(**kwargs):
    defaults = dict(
        device=KEPLER_K40C,
        grid_blocks=2,
        threads_per_block=32,
        ecc=SecdedModel(mode=EccMode.ON),
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return KernelContext(**defaults)
