"""KernelContext memory: loads/stores, masking, wild accesses, tiles."""

import numpy as np
import pytest

from repro.arch.dtypes import DType
from repro.arch.isa import OpClass
from repro.common.errors import ConfigurationError
from repro.sim.exceptions import IllegalAddressError

from tests.sim.conftest import make_ctx


class TestGlobalLdSt:
    def test_load_gathers(self, ctx):
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        gid = ctx.global_id()
        out = ctx.ld(buf, gid)
        np.testing.assert_array_equal(out.data, np.arange(64, dtype=np.float32))
        assert ctx.trace.instances[OpClass.LDG] == 64

    def test_store_scatters(self, ctx):
        buf = ctx.alloc_zeros("c", 64, DType.INT32)
        gid = ctx.global_id()
        ctx.st(buf, gid, gid)
        np.testing.assert_array_equal(buf.data, np.arange(64, dtype=np.int32))
        assert ctx.trace.instances[OpClass.STG] == 64

    def test_store_dtype_checked(self, ctx):
        buf = ctx.alloc_zeros("c", 64, DType.FP32)
        gid = ctx.global_id()
        with pytest.raises(Exception):
            ctx.st(buf, gid, gid)  # int32 value into fp32 buffer

    def test_scalar_index_broadcast(self, ctx):
        buf = ctx.alloc("a", np.arange(8, dtype=np.float32), DType.FP32)
        out = ctx.ld(buf, 3)
        assert (out.data == 3.0).all()

    def test_masked_lanes_do_not_store(self, ctx):
        buf = ctx.alloc_zeros("c", 64, DType.INT32)
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", 10)):
            ctx.st(buf, gid, ctx.add(gid, 100))
        assert (buf.data[:10] >= 100).all()
        assert (buf.data[10:] == 0).all()

    def test_masked_lanes_load_zero(self, ctx):
        buf = ctx.alloc("a", np.full(64, 7.0, dtype=np.float32), DType.FP32)
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "lt", 5)):
            out = ctx.ld(buf, gid)
        assert (out.data[:5] == 7.0).all()
        assert (out.data[5:] == 0.0).all()

    def test_traffic_counted(self, ctx):
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        ctx.ld(buf, ctx.global_id())
        assert ctx.trace.global_bytes == 64 * 4


class TestWildAccesses:
    def test_near_oob_read_returns_garbage_not_fault(self, ctx):
        """An index just past the buffer stays within the mapped span —
        delivered garbage (SDC territory), not a device exception."""
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        idx = ctx.add(ctx.global_id(), 64)  # 64..127, buffer has 64
        out = ctx.ld(buf, idx)
        assert out.data.shape[0] == 64  # no exception

    def test_far_oob_read_faults(self, ctx):
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        idx = ctx.add(ctx.global_id(), 2**24)
        with pytest.raises(IllegalAddressError):
            ctx.ld(buf, idx)

    def test_negative_address_faults(self, ctx):
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        idx = ctx.sub(ctx.global_id(), 1000)
        with pytest.raises(IllegalAddressError):
            ctx.ld(buf, idx)

    def test_wild_store_corrupts_neighbor_not_faults(self, ctx):
        buf = ctx.alloc("a", np.zeros(64, dtype=np.int32), DType.INT32)
        victim = ctx.alloc("b", np.zeros(64, dtype=np.int32), DType.INT32)
        gid = ctx.global_id()
        with ctx.masked(ctx.setp(gid, "eq", 0)):
            ctx.st(buf, ctx.add(gid, 100), ctx.const(1, DType.INT32))
        corrupted = np.count_nonzero(buf.data) + np.count_nonzero(victim.data)
        assert corrupted == 1  # one victim word flipped somewhere

    def test_wild_read_deterministic(self, ctx):
        buf = ctx.alloc("a", np.arange(64, dtype=np.float32), DType.FP32)
        idx = ctx.add(ctx.global_id(), 64)
        a = ctx.ld(buf, idx).data.copy()
        b = ctx.ld(buf, idx).data.copy()
        np.testing.assert_array_equal(a, b)


class TestSharedMemory:
    def test_shared_round_trip(self, ctx):
        sbuf = ctx.shared_alloc("s", 32, DType.INT32)
        tid = ctx.thread_idx()
        ctx.st(sbuf, tid, ctx.add(tid, 100))
        ctx.bar()
        out = ctx.ld(sbuf, tid)
        assert (out.data >= 100).all()
        assert ctx.trace.instances[OpClass.STS] == 64
        assert ctx.trace.instances[OpClass.LDS] == 64

    def test_blocks_are_isolated(self, ctx):
        sbuf = ctx.shared_alloc("s", 32, DType.INT32)
        tid = ctx.thread_idx()
        bid = ctx.block_idx()
        ctx.st(sbuf, tid, bid)
        assert (sbuf.data[0] == 0).all()
        assert (sbuf.data[1] == 1).all()

    def test_wild_shared_index_wraps(self, ctx):
        sbuf = ctx.shared_alloc("s", 32, DType.INT32)
        tid = ctx.thread_idx()
        out = ctx.ld(sbuf, ctx.add(tid, 32))  # wraps to tid
        assert out.data.shape[0] == 64  # no exception

    def test_shared_capacity_checked(self, ctx):
        with pytest.raises(ConfigurationError):
            ctx.shared_alloc("huge", 64 * 1024, DType.FP64)

    def test_shared_traffic(self, ctx):
        sbuf = ctx.shared_alloc("s", 32, DType.FP32)
        tid = ctx.thread_idx()
        ctx.ld(sbuf, tid)
        assert ctx.trace.shared_bytes == 64 * 4


class TestAtomics:
    def test_atomic_add_accumulates_collisions(self, ctx):
        buf = ctx.alloc_zeros("c", 4, DType.INT32)
        gid = ctx.global_id()
        ctx.atomic_add(buf, ctx.imod(gid, 4), ctx.const(1, DType.INT32))
        np.testing.assert_array_equal(buf.data, np.full(4, 16, dtype=np.int32))
        assert ctx.trace.instances[OpClass.ATOM] == 64

    def test_atomic_on_shared_rejected(self, ctx):
        sbuf = ctx.shared_alloc("s", 32, DType.INT32)
        with pytest.raises(Exception):
            ctx.atomic_add(sbuf, ctx.thread_idx(), ctx.const(1, DType.INT32))


class TestTiles:
    def test_ld_tile_and_mma(self, volta_warp_ctx):
        ctx = volta_warp_ctx
        n = 16
        a_host = np.eye(n, dtype=np.float16).reshape(-1)
        a = ctx.alloc("a", np.tile(a_host, 1), DType.FP16)
        at = ctx.ld_tile(a, 0, n, n, n)
        assert at.tile_shape == (n, n)
        acc = ctx.zeros_tile(n, n, DType.FP16)
        out = ctx.mma(at, at, acc)
        # identity @ identity = identity
        np.testing.assert_array_equal(out.data[0], np.eye(n, dtype=np.float16))
        assert ctx.trace.instances[OpClass.HMMA] == ctx.num_lanes * ctx.MMA_INSTRUCTIONS_PER_TILE

    def test_mma_requires_warp_lanes(self, ctx):
        with pytest.raises(Exception):
            ctx.zeros_tile(16, 16, DType.FP16)
            ctx.mma(None, None, None)

    def test_mma_rejected_on_kepler(self):
        from repro.arch.devices import KEPLER_K40C

        ctx = make_ctx(device=KEPLER_K40C, warp_lanes=True, threads_per_block=64)
        a = ctx.zeros_tile(16, 16, DType.FP16)
        with pytest.raises(ConfigurationError):
            ctx.mma(a, a, ctx.zeros_tile(16, 16, DType.FP16))

    def test_fmma_class_for_fp32_accumulate(self, volta_warp_ctx):
        ctx = volta_warp_ctx
        a = ctx.zeros_tile(16, 16, DType.FP16)
        acc = ctx.zeros_tile(16, 16, DType.FP32)
        ctx.mma(a, a, acc)
        assert OpClass.FMMA in ctx.trace.instances
        assert OpClass.HMMA not in ctx.trace.instances

    def test_st_tile_round_trip(self, volta_warp_ctx):
        ctx = volta_warp_ctx
        n = 16
        data = np.arange(ctx.num_lanes * n * n, dtype=np.float16)
        src = ctx.alloc("src", data, DType.FP16)
        dst = ctx.alloc_zeros("dst", data.shape, DType.FP16)
        base = ctx.mul(ctx.global_id(), n * n)
        tile = ctx.ld_tile(src, base, n, n, n)
        ctx.st_tile(dst, base, tile, n)
        np.testing.assert_array_equal(dst.data, src.data)
